"""Fault-tolerance analysis driver (paper §2.7, §6.3).

Runs the fig 5 meta-protocol: transform the network program so attributes are
maps from failure scenarios to routes, simulate once, then read the converged
MTBDDs.  Each distinct leaf of a node's map is one *failure-equivalence
class* — the classes the paper says its analysis discovers dynamically — and
the key-count per leaf is the class size.

The driver also checks the base program's assertion on every class and can
produce a concrete witness scenario per violating class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from .. import metrics, obs, perf
from ..eval.interp import Interpreter, program_env
from ..eval.maps import MapContext, NVMap
from ..lang import types as T
from ..srp.network import Network, functions_from_program
from ..srp.simulate import simulate
from ..transform.fault_tolerance import fault_tolerance_transform, scenario_key_type


@dataclass
class NodeFaultReport:
    node: int
    # Each entry: (route value, number of scenarios with that route, ok?).
    classes: list[tuple[Any, int, bool]]

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def violating_scenarios(self) -> int:
        return sum(count for _, count, ok in self.classes if not ok)


@dataclass
class FaultReport:
    num_link_failures: int
    node_failures: bool
    nodes: list[NodeFaultReport]
    simulate_seconds: float
    transform_seconds: float
    witnesses: dict[int, Any] = field(default_factory=dict)

    @property
    def total_violations(self) -> int:
        return sum(n.violating_scenarios for n in self.nodes)

    @property
    def fault_tolerant(self) -> bool:
        return self.total_violations == 0

    @property
    def max_classes(self) -> int:
        return max((n.num_classes for n in self.nodes), default=0)

    def summary(self) -> str:
        status = "FAULT TOLERANT" if self.fault_tolerant else (
            f"{self.total_violations} violating scenario keys")
        return (f"{self.num_link_failures}-link"
                f"{'+node' if self.node_failures else ''} failures: {status}; "
                f"max classes/node = {self.max_classes}; "
                f"simulate {self.simulate_seconds:.3f}s")


def fault_tolerance_analysis(net: Network,
                             symbolics: dict[str, Any] | None = None,
                             num_link_failures: int = 1,
                             node_failures: bool = False,
                             with_witnesses: bool = False,
                             functions_factory=None,
                             drop_body=None) -> FaultReport:
    """Simulate all failure scenarios of ``net`` at once and check its
    assertion under every one of them.

    ``functions_factory`` optionally overrides how the transformed program is
    turned into executable functions (the compiled backend passes its own).
    """
    t0 = perf_counter()
    with metrics.phase("fault.transform"), \
         obs.span("fault.transform", link_failures=num_link_failures,
                  node_failures=node_failures):
        ft_net = fault_tolerance_transform(net, num_link_failures,
                                           node_failures, drop_body=drop_body)
    transform_seconds = perf_counter() - t0

    with obs.span("fault.setup"):
        ctx = MapContext(ft_net.num_nodes, ft_net.edges)
        interp = Interpreter(ctx)
        if functions_factory is None:
            funcs = functions_from_program(ft_net, symbolics, ctx=ctx,
                                           interp=interp)
        else:
            funcs = functions_factory(ft_net, symbolics, ctx, interp)

    t0 = perf_counter()
    with metrics.phase("fault.simulate"), \
         obs.span("sim.simulate", nodes=ft_net.num_nodes,
                  edges=len(ft_net.edges)) as sp:
        solution = simulate(funcs)
        if sp is not None:
            sp.attrs.update(activations=solution.iterations,
                            messages=solution.messages)
    simulate_seconds = perf_counter() - t0

    # Flush the diagram-engine work counters for this run (fig 13b reports
    # BDD op-cache hit rates alongside the scaling curve).
    perf.merge(ctx.manager.stats(), prefix="bdd.")
    perf.merge({"transform_seconds": transform_seconds,
                "simulate_seconds": simulate_seconds}, prefix="fault.")

    # The base assertion lives on as `assertBase` in the transformed program.
    env = program_env(ft_net.program, interp, symbolics)
    assert_base = env.get("assertBase")

    def check(u: int, attr: Any) -> bool:
        if assert_base is None:
            return True
        return bool(interp.apply(interp.apply(assert_base, u), attr))

    reports: list[NodeFaultReport] = []
    witnesses: dict[int, Any] = {}
    key_ty = scenario_key_type(num_link_failures, node_failures)
    with metrics.phase("fault.classes"), \
         obs.span("fault.classes", witnesses=with_witnesses) as sp:
        for u in range(ft_net.num_nodes):
            label = solution.labels[u]
            assert isinstance(label, NVMap)
            classes = [(value, count, check(u, value))
                       for value, count in label.groups().items()]
            reports.append(NodeFaultReport(u, classes))
            if with_witnesses and any(not ok for _, _, ok in classes):
                witness = _violation_witness(label, key_ty, check, u)
                if witness is not None:
                    witnesses[u] = witness
        if sp is not None:
            sp.attrs["max_classes"] = max(
                (n.num_classes for n in reports), default=0)

    return FaultReport(num_link_failures, node_failures, reports,
                       simulate_seconds, transform_seconds, witnesses)


def _violation_witness(label: NVMap, key_ty: T.Type, check, node: int) -> Any:
    """A concrete failure scenario under which ``node`` violates the
    assertion, decoded from the converged MTBDD."""
    mgr = label.ctx.manager
    bad = mgr.apply1(lambda value: not check(node, value), label.root)
    bad = mgr.band(bad, label.ctx.domain(key_ty))
    width = label.ctx.encoder.width(key_ty)
    assignment = mgr.any_sat(bad, width)
    if assignment is None:
        return None
    bits = [assignment[i] for i in range(width)]
    return label.ctx.encoder.decode(key_ty, bits)


def naive_fault_tolerance(net: Network,
                          symbolics: dict[str, Any] | None = None,
                          num_link_failures: int = 1) -> tuple[bool, int]:
    """The baseline the paper calls "orders-of-magnitude" slower: simulate
    each failure scenario independently (§2.7).  Returns (tolerant?, number
    of scenarios simulated).  Single-link failures only."""
    if num_link_failures != 1:
        raise NotImplementedError("the naive baseline enumerates single failures")
    scenarios = 0
    tolerant = True
    for failed in net.edges:
        scenarios += 1
        funcs = functions_from_program(net, symbolics)
        base_trans = funcs.trans

        def trans(edge, x, _failed=failed):
            if edge == _failed or edge == (_failed[1], _failed[0]):
                return None
            return base_trans(edge, x)

        funcs.trans = trans
        solution = simulate(funcs)
        if solution.check_assertions(funcs.assert_fn):
            tolerant = False
    return tolerant, scenarios
