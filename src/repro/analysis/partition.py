"""Modular (Kirigami-style) verification driver.

Cut the network into fragments (:mod:`repro.partition.cutter`), annotate
every directed cut edge with an interface (:mod:`repro.partition.interfaces`)
and verify each fragment as its own small SMT instance, fanned out over the
:mod:`repro.parallel` worker pool:

* the fragment containing the *target* of a cut edge **assumes** the
  annotation — the edge's post-transfer message enters the merge chain as
  an interface value constrained by it;
* the fragment containing the *source* must **guarantee** it — an SMT
  obligation that everything it can send across the edge in a stable state
  satisfies the annotation.

Discharging every guarantee plus every fragment's own assertion implies the
monolithic verdict (assume-guarantee over the cut); a failed guarantee
names the violated interface edge.  Unannotated edges are *inferred* from
one cheap whole-network simulation — exact messages of the simulated stable
state.  Inferred interfaces restrict verification to stable states
consistent with that simulation (for deterministic nets: the unique stable
state, so no loss); when an inferred guarantee fails — symbolics, multiple
stable states — the driver escalates to a monolithic :func:`~verify` so the
final verdict is always sound.

Each fragment uses one persistent incremental solver: the fragment encoding
is preprocessed once, ¬P and each ¬guarantee attach via assumption
selectors (:meth:`Solver.check_assuming`), and learnt clauses carry across
the checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Sequence

from .. import metrics, obs, parallel, perf
from ..eval.values import VRecord, VSome
from ..lang import ast as A
from ..lang import types as T
from ..lang.errors import NvPartitionError, NvTypeError
from ..lang.parser import parse_expr
from ..partition.cutter import (PartitionPlan, auto_partition,
                                plan_from_cut_links, plan_from_fragments)
from ..partition.interfaces import Annotation, CutSpec
from ..smt.encode_nv import NvSmtEncoder, VerificationResult
from ..smt.solver import Solver
from ..srp.network import Network, functions_from_program
from ..topology.graph import Topology
from .simulation import run_simulation
from .verify import DecodedMap, _result_from_smt, decode_tval, encode_network, verify


# ----------------------------------------------------------------------
# Interface specs: how an annotation manifests inside a fragment encoding
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ConcreteInterface:
    """An inferred (or concrete-route) interface: the message crossing the
    edge *is* this value."""

    value: Any

    def materialise(self, enc: NvSmtEncoder, ev: Any, env: dict, edge: tuple) -> Any:
        return enc.lift(self.value, enc.net.attr_ty)

    def obligation(self, enc: NvSmtEncoder, ev: Any, env: dict, edge: tuple,
                   msg: Any) -> int:
        return enc.t_eq(msg, enc.lift(self.value, enc.net.attr_ty))


@dataclass(frozen=True)
class ExprInterface:
    """A textual ``route`` annotation: an NV expression (evaluated as the
    ``__iface_u_v`` declaration of the extended program) the message must
    equal."""

    let_name: str

    def materialise(self, enc: NvSmtEncoder, ev: Any, env: dict, edge: tuple) -> Any:
        return enc.lift(env[self.let_name], enc.net.attr_ty)

    def obligation(self, enc: NvSmtEncoder, ev: Any, env: dict, edge: tuple,
                   msg: Any) -> int:
        return enc.t_eq(msg, enc.lift(env[self.let_name], enc.net.attr_ty))


@dataclass(frozen=True)
class PredInterface:
    """A ``pred`` annotation: a predicate over the attribute type.  The
    assume side introduces a fresh interface variable constrained by it (the
    message could be anything satisfying the predicate); the guarantee side
    demands the sent message satisfies it."""

    let_name: str

    def materialise(self, enc: NvSmtEncoder, ev: Any, env: dict, edge: tuple) -> Any:
        u, v = edge
        var = enc.make_var(enc.net.attr_ty, f"iface.{u}.{v}")
        holds = ev.apply(env[self.let_name], var)
        enc.constraints.append(ev.to_bool_term(holds))
        return var

    def obligation(self, enc: NvSmtEncoder, ev: Any, env: dict, edge: tuple,
                   msg: Any) -> int:
        holds = ev.apply(env[self.let_name], msg)
        return ev.to_bool_term(holds)


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------

@dataclass
class InterfaceCheck:
    """Outcome of one outbound guarantee discharge."""

    edge: tuple[int, int]
    kind: str                       # "route" | "pred" | "infer"
    status: str                     # "discharged" | "refuted" | "unknown"
    seconds: float
    # On refutation: the fragment's stable state that sends a violating
    # message (node -> decoded attribute).
    witness: dict[int, Any] | None = None


@dataclass
class FragmentResult:
    """One fragment's property verdict plus its guarantee discharges."""

    index: int
    nodes: tuple[int, ...]
    result: VerificationResult
    guarantees: list[InterfaceCheck]
    encode_seconds: float
    seconds: float

    @property
    def refuted_interfaces(self) -> list[tuple[int, int]]:
        return [g.edge for g in self.guarantees if g.status == "refuted"]


@dataclass
class PartitionReport:
    """The merged outcome of a partitioned verification run."""

    status: str        # verified | counterexample | interface_refuted | unknown
    verified: bool
    plan: PartitionPlan
    fragments: list[FragmentResult]
    kinds: dict[tuple[int, int], str]
    refuted_interfaces: list[tuple[int, int]] = field(default_factory=list)
    counterexample: dict[str, Any] | None = None
    node_attrs: dict[int, Any] | None = None
    stitched: bool = False          # node_attrs covers the whole network
    escalated: bool = False
    monolithic: VerificationResult | None = None
    inferred: dict[tuple[int, int], Any] = field(default_factory=dict)
    infer_seconds: float = 0.0
    wall_seconds: float = 0.0

    def summary(self) -> str:
        lines = [f"partitioned verify: {self.plan.describe()}, "
                 f"{len(self.inferred)} interfaces inferred"]
        for fr in self.fragments:
            checks = len(fr.guarantees)
            ok = sum(1 for g in fr.guarantees if g.status == "discharged")
            lines.append(
                f"  fragment {fr.index} ({len(fr.nodes)} nodes): "
                f"{fr.result.status}; guarantees {ok}/{checks} discharged, "
                f"{fr.seconds:.3f}s")
        for edge in self.refuted_interfaces:
            lines.append(f"  refuted interface {edge[0]}->{edge[1]} "
                         f"({self.kinds.get(edge, '?')} annotation)")
        if self.escalated:
            mono = self.monolithic.status if self.monolithic else "?"
            lines.append(f"  inferred interface refuted -> escalated to "
                         f"monolithic: {mono}")
        lines.append(f"  => {self.status} ({self.wall_seconds:.3f}s)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Inference: seed interfaces from one whole-network simulation
# ----------------------------------------------------------------------

_NO_KEY = object()


def _untracked_key(key_ty: T.Type, tracked: Sequence[Any], num_nodes: int) -> Any:
    """A key valuation outside the encoding's tracked set, probing a map's
    shared off-tracked default.  Returns :data:`_NO_KEY` when every
    encodable key is tracked (the default is then never compared)."""
    used = set(tracked)
    if isinstance(key_ty, T.TBool):
        candidates: Sequence[Any] = (False, True)
    elif isinstance(key_ty, T.TNode):
        candidates = range(num_nodes)
    elif isinstance(key_ty, T.TInt):
        candidates = range(min(1 << key_ty.width, len(used) + 2))
    else:
        return _NO_KEY
    for c in candidates:
        if c not in used:
            return c
    return _NO_KEY


def _plain_route(value: Any, ty: T.Type,
                 map_keys: dict[T.Type, list[Any]], num_nodes: int) -> Any:
    """Convert a simulated route (possibly holding live MTBDD-backed maps)
    into a picklable plain value: maps unroll to :class:`DecodedMap` over
    the keys the SMT encoding tracks, matching :func:`decode_tval` output."""
    if isinstance(ty, T.TDict):
        tracked = list(map_keys.get(ty.key, []))
        entries = tuple(sorted(
            (k, _plain_route(value.get(k), ty.value, map_keys, num_nodes))
            for k in tracked))
        probe = _untracked_key(ty.key, tracked, num_nodes)
        if probe is _NO_KEY:
            default = (entries[0][1] if entries else None)
        else:
            default = _plain_route(value.get(probe), ty.value, map_keys,
                                   num_nodes)
        return DecodedMap(entries, default)
    if isinstance(ty, T.TOption):
        if value is None:
            return None
        return VSome(_plain_route(value.value, ty.elt, map_keys, num_nodes))
    if isinstance(ty, T.TTuple):
        return tuple(_plain_route(v, t, map_keys, num_nodes)
                     for v, t in zip(value, ty.elts))
    if isinstance(ty, T.TRecord):
        return VRecord(tuple(
            (n, _plain_route(value.get(n), t, map_keys, num_nodes))
            for n, t in ty.fields))
    return value


def infer_interfaces(net: Network, edges: Sequence[tuple[int, int]],
                     symbolics: dict[str, Any] | None = None
                     ) -> dict[tuple[int, int], Any]:
    """Simulate the whole network once and read off the exact message
    crossing each requested directed edge in the converged state.

    This is the driver's inference mode: one polynomial-time simulation
    seeds every unannotated interface, against which the exponential SMT
    work then happens per small fragment.  Symbolic programs need concrete
    ``symbolics`` for the simulation — and the resulting annotations only
    describe that assignment's stable state, which is why the driver
    re-checks them as guarantees and escalates on failure.
    """
    if net.program.symbolics() and not symbolics:
        raise NvPartitionError(
            "interface inference needs concrete symbolic values "
            "(the simulation pass fixes each symbolic); annotate the cut "
            "edges explicitly or provide symbolics")
    report = run_simulation(net, symbolics, backend="interp")
    labels = report.solution.labels
    funcs = functions_from_program(net, symbolics)
    probe = NvSmtEncoder(net)
    probe.collect_map_keys()
    out: dict[tuple[int, int], Any] = {}
    for edge in edges:
        u, _v = edge
        msg = funcs.trans(edge, labels[u])
        out[edge] = _plain_route(msg, net.attr_ty, probe.map_keys,
                                 net.num_nodes)
    return out


def simulated_node_attrs(net: Network,
                         symbolics: dict[str, Any] | None = None
                         ) -> dict[int, Any]:
    """Converged per-node attributes as plain picklable values (used to
    stitch whole-network counterexamples)."""
    report = run_simulation(net, symbolics, backend="interp")
    probe = NvSmtEncoder(net)
    probe.collect_map_keys()
    return {u: _plain_route(lbl, net.attr_ty, probe.map_keys, net.num_nodes)
            for u, lbl in enumerate(report.solution.labels)}


# ----------------------------------------------------------------------
# The extended program: textual annotations become __iface declarations
# ----------------------------------------------------------------------

def _iface_let_name(edge: tuple[int, int]) -> str:
    return f"__iface_{edge[0]}_{edge[1]}"


def extend_with_annotations(net: Network,
                            annotations: dict[tuple[int, int], Annotation]
                            ) -> Network:
    """Append each textual annotation as a typed ``__iface_u_v`` let and
    re-check the program: the annotations are parsed with the program's
    type aliases in scope, type checked against the attribute type (routes)
    or ``attribute -> bool`` (predicates), and annotated for the encoder.
    """
    textual = {e: a for e, a in annotations.items() if a.kind != "infer"}
    if not textual:
        return net
    type_env = net.program.type_decls()
    decls = list(net.program.decls)
    for edge in sorted(textual):
        annot = textual[edge]
        try:
            expr = parse_expr(annot.text, type_env=type_env)
        except Exception as exc:
            raise NvPartitionError(
                f"interface {edge[0]}->{edge[1]}: cannot parse "
                f"{annot.kind} annotation: {exc}") from exc
        ann_ty = (net.attr_ty if annot.kind == "route"
                  else T.TArrow(net.attr_ty, T.TBool()))
        decls.append(A.DLet(_iface_let_name(edge), expr, annot=ann_ty))
    try:
        return Network.from_program(A.Program(decls))
    except NvTypeError as exc:
        raise NvPartitionError(
            f"an interface annotation does not fit the attribute type: "
            f"{exc}") from exc


# ----------------------------------------------------------------------
# Per-fragment verification (worker side)
# ----------------------------------------------------------------------

def _verify_fragment(net: Network, index: int, nodes: Sequence[int],
                     inbound: dict[tuple[int, int], Any],
                     outbound: dict[tuple[int, int], Any],
                     kinds: dict[tuple[int, int], str],
                     simplify: bool, max_conflicts: int | None
                     ) -> FragmentResult:
    """Encode one fragment and discharge its property plus every outbound
    guarantee against a single persistent incremental solver."""
    t_start = perf_counter()
    t0 = perf_counter()
    with metrics.phase("smt.encode"), \
         obs.span("partition.encode_fragment", fragment=index,
                  nodes=len(nodes), inbound=len(inbound),
                  outbound=len(outbound)) as sp:
        enc, ev, prop = encode_network(net, simplify=simplify, nodes=nodes,
                                       inbound=inbound, outbound=outbound)
        tm = enc.tm
        solver = Solver(tm, incremental=True)
        for c in enc.constraints:
            solver.add(c)
        # One selector per check, all registered before the first solve so
        # CNF preprocessing freezes them (the PR5 incremental discipline).
        neg_prop = tm.mk_not(prop)
        checks: list[tuple[tuple[int, int] | None, int]] = [(None, neg_prop)]
        for edge, g in sorted(enc.guarantee_terms.items()):
            checks.append((edge, tm.mk_not(g)))
        for _, query in checks:
            solver.push_assumption(query)
        solver.relax()
        if sp is not None:
            sp.attrs["constraints"] = len(enc.constraints)
    encode_seconds = perf_counter() - t0

    smt = solver.check_assuming(neg_prop, max_conflicts)
    prop_result = _result_from_smt(net, enc, smt, encode_seconds)

    guarantees: list[InterfaceCheck] = []
    for edge, query in checks[1:]:
        t0 = perf_counter()
        smt_g = solver.check_assuming(query, max_conflicts)
        seconds = perf_counter() - t0
        witness = None
        if smt_g.is_unsat:
            status = "discharged"
        elif smt_g.status == "unknown":
            status = "unknown"
        else:
            status = "refuted"
            assignment: dict[str, Any] = {}
            assignment.update(smt_g.model_bools)
            assignment.update(smt_g.model_bvs)
            witness = {u: decode_tval(enc, tv, net.attr_ty, assignment)
                       for u, tv in enc.attr_vals.items()}
        obs.event("partition.guarantee", fragment=index,
                  edge=f"{edge[0]}->{edge[1]}", status=status,
                  seconds=round(seconds, 6))
        guarantees.append(InterfaceCheck(edge, kinds.get(edge, "infer"),
                                         status, seconds, witness))
    perf.merge({"fragments": 1,
                "guarantees_checked": len(guarantees),
                "guarantees_refuted": sum(
                    1 for g in guarantees if g.status == "refuted")},
               prefix="partition.")
    return FragmentResult(index, tuple(sorted(nodes)), prop_result,
                          guarantees, encode_seconds,
                          perf_counter() - t_start)


def _fragment_shard_factory(payload: dict[str, Any]):
    """Worker-side factory for :func:`verify_partitioned`: per unit, verify
    one fragment.  Everything solver-side is built here, in the worker;
    only the plain-data :class:`FragmentResult` travels back."""
    net: Network = payload["net"]
    fragments: list[tuple[int, ...]] = payload["fragments"]
    specs: dict[tuple[int, int], Any] = payload["specs"]
    kinds: dict[tuple[int, int], str] = payload["kinds"]

    def run(idx: int) -> FragmentResult:
        nodes = fragments[idx]
        node_set = set(nodes)
        inbound = {e: s for e, s in specs.items()
                   if e[1] in node_set and e[0] not in node_set}
        outbound = {e: s for e, s in specs.items()
                    if e[0] in node_set and e[1] not in node_set}
        return _verify_fragment(net, idx, nodes, inbound, outbound, kinds,
                                payload["simplify"], payload["max_conflicts"])

    return run


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------

def resolve_plan(net: Network, partition: int | None = None,
                 cuts: CutSpec | None = None,
                 method: str = "auto",
                 topo: Topology | None = None) -> PartitionPlan:
    """Turn the user's partitioning request into a validated plan."""
    if topo is None:
        topo = Topology(net.num_nodes, [tuple(l) for l in net.links],
                        name="net")
    if cuts is not None:
        if cuts.fragments is not None:
            return plan_from_fragments(topo, cuts.fragments)
        return plan_from_cut_links(topo, cuts.cut_links or [])
    return auto_partition(topo, k=partition, method=method)


def verify_partitioned(net: Network,
                       partition: int | None = None,
                       cuts: CutSpec | None = None,
                       plan: PartitionPlan | None = None,
                       method: str = "auto",
                       topo: Topology | None = None,
                       simplify: bool = True,
                       max_conflicts: int | None = None,
                       jobs: int | None = 1,
                       start_method: str | None = None,
                       symbolics: dict[str, Any] | None = None,
                       escalate: bool = True) -> PartitionReport:
    """Verify ``net`` modularly: cut, annotate, fan fragments out over the
    worker pool, discharge interfaces, merge verdicts.

    ``partition``/``method`` pick an automatic cut; ``cuts`` supplies an
    explicit cut file (fragments or cut links plus annotations); ``plan``
    bypasses both.  Unannotated cut edges are inferred from simulation.
    ``escalate=False`` turns the inferred-guarantee-failure fallback into a
    plain ``interface_refuted`` report (used by tests; the default keeps
    the verdict sound by re-running monolithically).
    """
    t_wall = perf_counter()
    if plan is None:
        plan = resolve_plan(net, partition=partition, cuts=cuts,
                            method=method, topo=topo)
    cut_set = set(plan.cut_edges)
    annotations = dict(cuts.interfaces) if cuts is not None else {}
    for edge in annotations:
        if edge not in cut_set:
            raise NvPartitionError(
                f"interface {edge[0]}->{edge[1]} annotates an edge that is "
                "not a directed cut edge of the partition")
    kinds = {e: annotations[e].kind if e in annotations else "infer"
             for e in plan.cut_edges}

    with obs.span("partition.verify", fragments=len(plan.fragments),
                  cut_edges=len(plan.cut_edges)):
        ext_net = extend_with_annotations(net, annotations)

        specs: dict[tuple[int, int], Any] = {}
        for edge, annot in annotations.items():
            if annot.kind == "route":
                specs[edge] = ExprInterface(_iface_let_name(edge))
            elif annot.kind == "pred":
                specs[edge] = PredInterface(_iface_let_name(edge))

        infer_edges = [e for e in plan.cut_edges if e not in specs]
        inferred: dict[tuple[int, int], Any] = {}
        infer_seconds = 0.0
        if infer_edges:
            t0 = perf_counter()
            with obs.span("partition.infer", edges=len(infer_edges)):
                inferred = infer_interfaces(net, infer_edges, symbolics)
            infer_seconds = perf_counter() - t0
            for edge, value in inferred.items():
                specs[edge] = ConcreteInterface(value)

        payload = {"net": ext_net, "fragments": list(plan.fragments),
                   "specs": specs, "kinds": kinds, "simplify": simplify,
                   "max_conflicts": max_conflicts}
        unit_labels = [f"fragment{i}[{len(nodes)}n]"
                       for i, nodes in enumerate(plan.fragments)]
        results: list[FragmentResult] = parallel.run_sharded(
            "repro.analysis.partition:_fragment_shard_factory", payload,
            range(len(plan.fragments)), jobs=jobs,
            start_method=start_method, label="partition",
            unit_labels=unit_labels)

        report = _merge_results(net, plan, kinds, results, inferred,
                                symbolics, simplify, max_conflicts, escalate)
    report.infer_seconds = infer_seconds
    report.wall_seconds = perf_counter() - t_wall
    metrics.set_gauge("partition.fragments", len(plan.fragments))
    metrics.set_gauge("partition.cut_edges", len(plan.cut_edges))
    metrics.set_gauge("partition.interfaces_inferred", len(inferred))
    metrics.set_gauge("partition.max_fragment_nodes",
                      max(len(f) for f in plan.fragments))
    perf.merge({"runs": 1, "cut_edges": len(plan.cut_edges),
                "escalations": int(report.escalated)}, prefix="partition.")
    return report


def _merge_results(net: Network, plan: PartitionPlan,
                   kinds: dict[tuple[int, int], str],
                   results: list[FragmentResult],
                   inferred: dict[tuple[int, int], Any],
                   symbolics: dict[str, Any] | None,
                   simplify: bool, max_conflicts: int | None,
                   escalate: bool) -> PartitionReport:
    refuted = [e for fr in results for e in fr.refuted_interfaces]
    user_refuted = [e for e in refuted if kinds.get(e) != "infer"]
    inferred_refuted = [e for e in refuted if kinds.get(e) == "infer"]
    failing = [fr for fr in results if fr.result.status == "counterexample"]
    unknown = any(fr.result.status == "unknown" for fr in results) or any(
        g.status == "unknown" for fr in results for g in fr.guarantees)

    report = PartitionReport("verified", True, plan, results, kinds,
                             refuted_interfaces=refuted, inferred=inferred)

    if user_refuted:
        # The user's annotation is wrong (or too weak to be guaranteed):
        # fragment verdicts assumed it, so none of them are trustworthy.
        # Report the violated edges; no escalation — the cut file needs
        # fixing (the witness shows the offending stable state).
        report.status = "interface_refuted"
        report.verified = False
        return report
    if inferred_refuted:
        # Inference promised the simulated message but other stable states
        # (symbolics, nondeterminism) can send something else.  The
        # decomposition is inconclusive; fall back to one monolithic query.
        report.escalated = True
        if escalate:
            mono = verify(net, simplify=simplify, max_conflicts=max_conflicts)
            report.monolithic = mono
            report.status = mono.status
            report.verified = mono.verified
            report.counterexample = mono.counterexample
            report.node_attrs = mono.node_attrs
            report.stitched = mono.node_attrs is not None
        else:
            report.status = "interface_refuted"
            report.verified = False
        return report
    if failing:
        # Guarantees all discharged, so every fragment counterexample
        # extends to a whole-network stable state: failing fragments
        # contribute their decoded models, the rest their simulated state
        # (available whenever inference ran).
        report.status = "counterexample"
        report.verified = False
        node_attrs: dict[int, Any] = {}
        stitched = False
        if inferred or not any(k != "infer" for k in kinds.values()):
            try:
                node_attrs.update(simulated_node_attrs(net, symbolics))
                stitched = True
            except Exception:
                stitched = False  # e.g. symbolics missing for simulation
        for fr in failing:
            if fr.result.node_attrs:
                node_attrs.update(fr.result.node_attrs)
        report.node_attrs = node_attrs or None
        report.stitched = stitched and len(node_attrs) == net.num_nodes
        report.counterexample = failing[0].result.counterexample
        return report
    if unknown:
        report.status = "unknown"
        report.verified = False
        return report
    return report
