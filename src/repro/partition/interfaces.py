"""The interface language for modular verification (Kirigami-style).

Every directed cut edge ``(u, v)`` carries an :class:`Annotation`
describing the post-transfer message ``trans((u,v), A_u)`` crossing it:

* ``route`` — a concrete NV expression the message must *equal*
  (e.g. ``Some {length = 2u8; lp = 100u8; tags = {}}``);
* ``pred`` — an NV predicate ``fun (x : attribute) -> ...`` the message
  must *satisfy*;
* ``infer`` — seed the annotation from a whole-network simulation pass
  (the driver's inference mode).

The fragment containing ``v`` **assumes** the annotation (the message is
merged into ``v`` as an interface symbolic constrained by it); the fragment
containing ``u`` must **guarantee** it (an SMT obligation that what it
actually sends satisfies the annotation in every stable state).  Checking
both directions is what makes the decomposition sound — and what catches a
wrong annotation as a fragment-level refutation naming the edge.

Cut files are JSON::

    {
      "fragments": [[0, 1], [2, 3]],          // or "cut_links": [[1, 2]]
      "interfaces": {
        "1->2": {"route": "Some 1u8"},
        "2->1": {"pred": "fun (x : attribute) -> match x with | None -> false | Some h -> h <= 3u8"},
        "3->0": "infer"
      }
    }

``fragments`` and ``cut_links`` are alternatives (give either the node sets
or the undirected links to sever); unlisted directed cut edges default to
``infer``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from ..lang.errors import NvPartitionError

ANNOTATION_KINDS = ("route", "pred", "infer")


@dataclass(frozen=True)
class Annotation:
    """One directed interface annotation: ``kind`` plus, for textual kinds,
    the NV source ``text``."""

    kind: str
    text: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in ANNOTATION_KINDS:
            raise NvPartitionError(
                f"unknown annotation kind {self.kind!r}; "
                f"use one of {ANNOTATION_KINDS}")
        if self.kind == "infer" and self.text is not None:
            raise NvPartitionError("'infer' annotations carry no text")
        if self.kind != "infer" and not self.text:
            raise NvPartitionError(f"{self.kind!r} annotation needs NV source text")


INFER = Annotation("infer")


@dataclass
class CutSpec:
    """A parsed cut file: how to fragment the network and what to assume on
    each directed cut edge.  ``fragments`` and ``cut_links`` are mutually
    exclusive ways to describe the cut; ``interfaces`` maps directed edges
    to annotations (missing edges default to :data:`INFER`)."""

    fragments: list[list[int]] | None = None
    cut_links: list[tuple[int, int]] | None = None
    interfaces: dict[tuple[int, int], Annotation] = field(default_factory=dict)

    def annotation(self, edge: tuple[int, int]) -> Annotation:
        return self.interfaces.get(edge, INFER)


def _parse_edge_key(key: str) -> tuple[int, int]:
    try:
        u, v = key.split("->")
        return int(u.strip()), int(v.strip())
    except ValueError:
        raise NvPartitionError(
            f"bad interface edge key {key!r}; expected 'u->v'") from None


def _parse_annotation(value: Any) -> Annotation:
    if value == "infer":
        return INFER
    if isinstance(value, dict) and len(value) == 1:
        (kind, text), = value.items()
        if kind in ("route", "pred") and isinstance(text, str):
            return Annotation(kind, text)
    raise NvPartitionError(
        f"bad interface annotation {value!r}; expected \"infer\", "
        "{\"route\": \"<nv expr>\"} or {\"pred\": \"<nv fun>\"}")


def parse_cut_spec(data: Any) -> CutSpec:
    """Validate and normalise a decoded cut-file JSON object."""
    if not isinstance(data, dict):
        raise NvPartitionError("cut file must be a JSON object")
    unknown = set(data) - {"fragments", "cut_links", "interfaces"}
    if unknown:
        raise NvPartitionError(f"unknown cut-file keys {sorted(unknown)}")
    fragments = data.get("fragments")
    cut_links = data.get("cut_links")
    if (fragments is None) == (cut_links is None):
        raise NvPartitionError(
            "cut file needs exactly one of 'fragments' or 'cut_links'")
    if fragments is not None:
        if (not isinstance(fragments, list) or not fragments
                or not all(isinstance(f, list) and f for f in fragments)):
            raise NvPartitionError("'fragments' must be a list of node lists")
        fragments = [[int(u) for u in f] for f in fragments]
    if cut_links is not None:
        try:
            cut_links = [(int(u), int(v)) for u, v in cut_links]
        except (TypeError, ValueError):
            raise NvPartitionError(
                "'cut_links' must be a list of [u, v] pairs") from None
    interfaces = {
        _parse_edge_key(k): _parse_annotation(v)
        for k, v in (data.get("interfaces") or {}).items()
    }
    return CutSpec(fragments, cut_links, interfaces)


def load_cut_file(path: str) -> CutSpec:
    with open(path, "r", encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise NvPartitionError(f"cut file {path}: invalid JSON: {exc}") from None
    return parse_cut_spec(data)


def dump_cut_spec(spec: CutSpec) -> str:
    """Serialise a :class:`CutSpec` back to cut-file JSON (round-trips
    through :func:`parse_cut_spec`)."""
    data: dict[str, Any] = {}
    if spec.fragments is not None:
        data["fragments"] = [list(f) for f in spec.fragments]
    if spec.cut_links is not None:
        data["cut_links"] = [list(l) for l in spec.cut_links]
    if spec.interfaces:
        data["interfaces"] = {
            f"{u}->{v}": ("infer" if a.kind == "infer" else {a.kind: a.text})
            for (u, v), a in sorted(spec.interfaces.items())
        }
    return json.dumps(data, indent=2)
