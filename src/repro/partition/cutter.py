"""Topology cutters for Kirigami-style modular verification.

A :class:`PartitionPlan` splits a topology's nodes into disjoint fragments;
the directed edges crossing fragments are the *cut edges*, each of which the
driver (:mod:`repro.analysis.partition`) models with an interface annotation.
Any disjoint cover is sound — fragment quality only affects how many
interfaces must be annotated/inferred and how balanced the per-fragment SMT
instances are.

Three heuristics, all deterministic and dependency-free:

* :func:`fattree_pods` — role-guided: drop the core, each remaining
  component is a pod; the core becomes its own spine fragment.
* :func:`bfs_rings` — farthest-point seeded multi-source BFS "ring growth"
  for WAN-style meshes: k well-separated seeds expand simultaneously.
* :func:`spectral_bisect` — recursive Fiedler bisection (power iteration on
  the deflated Laplacian complement), which discovers pod-like weakly
  coupled groups without role metadata.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.errors import NvPartitionError
from ..topology.graph import Topology


@dataclass(frozen=True)
class PartitionPlan:
    """Disjoint fragments covering a topology, plus the directed cut edges.

    ``fragments[i]`` is a sorted node tuple; ``cut_edges`` lists every
    directed edge ``(u, v)`` whose endpoints live in different fragments
    (both orientations of a crossing link appear, since routing messages
    flow both ways and each direction carries its own interface).
    """

    num_nodes: int
    fragments: tuple[tuple[int, ...], ...]
    cut_edges: tuple[tuple[int, int], ...]

    def fragment_of(self, node: int) -> int:
        for i, frag in enumerate(self.fragments):
            if node in frag:
                return i
        raise NvPartitionError(f"node {node} is in no fragment")

    def describe(self) -> str:
        sizes = ", ".join(str(len(f)) for f in self.fragments)
        return (f"{len(self.fragments)} fragments (sizes {sizes}), "
                f"{len(self.cut_edges)} directed cut edges")


def plan_from_fragments(topo: Topology,
                        fragments: "list[list[int]] | tuple[tuple[int, ...], ...]"
                        ) -> PartitionPlan:
    """Validate a user-given fragmentation and derive its cut edges.

    Fragments must be non-empty, disjoint and cover every node; they need
    not be connected (correctness never depends on it).
    """
    cleaned: list[tuple[int, ...]] = []
    owner: dict[int, int] = {}
    for i, frag in enumerate(fragments):
        nodes = sorted(set(int(u) for u in frag))
        if not nodes:
            raise NvPartitionError(f"fragment {i} is empty")
        for u in nodes:
            if not 0 <= u < topo.num_nodes:
                raise NvPartitionError(
                    f"fragment {i} node {u} out of range "
                    f"(topology has {topo.num_nodes} nodes)")
            if u in owner:
                raise NvPartitionError(
                    f"node {u} appears in fragments {owner[u]} and {i}")
            owner[u] = i
        cleaned.append(tuple(nodes))
    missing = [u for u in range(topo.num_nodes) if u not in owner]
    if missing:
        raise NvPartitionError(
            f"nodes {missing} are covered by no fragment")

    cuts = [(u, v) for u, v in topo.directed_edges() if owner[u] != owner[v]]
    return PartitionPlan(topo.num_nodes, tuple(cleaned), tuple(sorted(cuts)))


def plan_from_cut_links(topo: Topology,
                        cut_links: "list[tuple[int, int]]") -> PartitionPlan:
    """Fragments are the connected components left after removing the given
    undirected links.  Each cut link must exist in the topology, and the cut
    must actually disconnect something (a single-fragment "partition" would
    silently degenerate to a monolithic verify)."""
    have = {(min(u, v), max(u, v)) for u, v in topo.links}
    cut = set()
    for u, v in cut_links:
        key = (min(int(u), int(v)), max(int(u), int(v)))
        if key not in have:
            raise NvPartitionError(f"cut link ({u}, {v}) is not in the topology")
        cut.add(key)
    rest = [(u, v) for u, v in topo.links
            if (min(u, v), max(u, v)) not in cut]
    remainder = Topology(topo.num_nodes, rest, name=topo.name)
    comps = remainder.components()
    if len(comps) < 2:
        raise NvPartitionError(
            f"cutting {sorted(cut)} leaves the topology connected — "
            "the cut set does not separate any fragment")
    return plan_from_fragments(topo, comps)


# ----------------------------------------------------------------------
# Heuristics
# ----------------------------------------------------------------------

def fattree_pods(topo: Topology) -> PartitionPlan:
    """Cut a fat-tree at the spine: the core nodes form one fragment and
    each pod (component after removing the core) its own fragment."""
    core = sorted(u for u, r in topo.roles.items() if r == "core")
    if not core:
        raise NvPartitionError(
            "fattree_pods needs nodes with role 'core' in topo.roles")
    pods_topo, new_to_old = topo.induced_subgraph(
        [u for u in range(topo.num_nodes) if u not in set(core)])
    pods = [[new_to_old[u] for u in comp] for comp in pods_topo.components()]
    return plan_from_fragments(topo, pods + [core])


def bfs_rings(topo: Topology, k: int) -> PartitionPlan:
    """k-way partition by farthest-point seeding + simultaneous BFS growth.

    Seeds are picked greedily to maximise hop distance from earlier seeds
    (regional centres in a WAN); every node then joins its hop-nearest seed
    (ties to the lower seed index), so fragments are connected "rings"
    around each seed.
    """
    n = topo.num_nodes
    if not 1 <= k <= n:
        raise NvPartitionError(f"cannot cut {n} nodes into {k} fragments")
    adj = topo.adjacency()

    def bfs_dist(sources: list[int]) -> list[int]:
        dist = [-1] * n
        frontier = list(sources)
        for s in sources:
            dist[s] = 0
        d = 0
        while frontier:
            d += 1
            nxt = []
            for u in frontier:
                for v in adj[u]:
                    if dist[v] < 0:
                        dist[v] = d
                        nxt.append(v)
            frontier = nxt
        return dist

    seeds = [max(range(n), key=lambda u: (len(adj[u]), -u))]
    while len(seeds) < k:
        dist = bfs_dist(seeds)
        # Farthest node (unreached components count as infinitely far).
        cand = max(range(n), key=lambda u: (dist[u] < 0, dist[u], -u))
        seeds.append(cand)

    owner = [-1] * n
    frontier: list[tuple[int, int]] = []
    for i, s in enumerate(seeds):
        owner[s] = i
        frontier.append((s, i))
    while frontier:
        nxt: list[tuple[int, int]] = []
        for u, i in frontier:
            for v in adj[u]:
                if owner[v] < 0:
                    owner[v] = i
                    nxt.append((v, i))
        # Lower seed index wins ties: process the frontier seed-by-seed.
        frontier = sorted(nxt, key=lambda t: t[1])
    for u in range(n):
        if owner[u] < 0:  # isolated from every seed
            owner[u] = 0
    frags: list[list[int]] = [[] for _ in range(k)]
    for u in range(n):
        frags[owner[u]].append(u)
    return plan_from_fragments(topo, [f for f in frags if f])


def _fiedler_split(nodes: list[int], adj: list[list[int]]) -> tuple[list[int], list[int]]:
    """Bisect ``nodes`` by the sign of an approximate Fiedler vector of the
    induced subgraph's Laplacian (power iteration on ``cI - L`` with the
    constant vector deflated — pure Python, no numpy)."""
    n = len(nodes)
    idx = {u: i for i, u in enumerate(nodes)}
    nbrs = [[idx[v] for v in adj[u] if v in idx] for u in nodes]
    deg = [len(b) for b in nbrs]
    c = 2.0 * max(deg) + 1.0 if n else 1.0

    # Deterministic start vector, orthogonal to the all-ones direction.
    x = [((i * 2654435761) % 1000) / 1000.0 - 0.5 for i in range(n)]
    for _ in range(120):
        mean = sum(x) / n
        x = [xi - mean for xi in x]
        y = [(c - deg[i]) * x[i] + sum(x[j] for j in nbrs[i])
             for i in range(n)]
        norm = max(abs(v) for v in y) or 1.0
        x = [v / norm for v in y]
    order = sorted(range(n), key=lambda i: (x[i], i))
    half = n // 2
    left = sorted(nodes[i] for i in order[:half])
    right = sorted(nodes[i] for i in order[half:])
    return left, right


def spectral_bisect(topo: Topology, k: int) -> PartitionPlan:
    """k-way partition by recursive Fiedler bisection (split the largest
    fragment until there are k).  The median split keeps fragments balanced;
    the Fiedler ordering puts weakly coupled groups (fat-tree pods, WAN
    regions) on opposite sides of the cut."""
    n = topo.num_nodes
    if not 1 <= k <= n:
        raise NvPartitionError(f"cannot cut {n} nodes into {k} fragments")
    adj = topo.adjacency()
    frags: list[list[int]] = [list(range(n))]
    while len(frags) < k:
        frags.sort(key=lambda f: (-len(f), f[0]))
        big = frags.pop(0)
        if len(big) < 2:
            frags.append(big)
            break
        left, right = _fiedler_split(big, adj)
        frags.extend([left, right])
    return plan_from_fragments(topo, frags)


def auto_partition(topo: Topology, k: int | None = None,
                   method: str = "auto") -> PartitionPlan:
    """Derive a cut automatically.

    ``method`` is ``"pods"`` (role-guided fat-tree spine cut), ``"bfs"``
    (farthest-point ring growth), ``"spectral"`` (recursive Fiedler
    bisection) or ``"auto"``: pods when core roles exist and no explicit
    ``k`` forces a different arity, else spectral.
    """
    if method == "auto":
        has_core = any(r == "core" for r in topo.roles.values())
        if has_core:
            plan = fattree_pods(topo)
            if k is None or len(plan.fragments) == k:
                return plan
        method = "spectral"
    if method == "pods":
        return fattree_pods(topo)
    if k is None:
        k = 2
    if method == "bfs":
        return bfs_rings(topo, k)
    if method == "spectral":
        return spectral_bisect(topo, k)
    raise NvPartitionError(
        f"unknown partition method {method!r}; use auto|pods|bfs|spectral")
