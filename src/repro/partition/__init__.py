"""Modular (Kirigami-style) verification: cutters and interface language.

The driver lives in :mod:`repro.analysis.partition`; this package holds the
graph-level pieces (fragmenting a :class:`~repro.topology.graph.Topology`)
and the cut-file / annotation format.
"""

from .cutter import (PartitionPlan, auto_partition, bfs_rings, fattree_pods,
                     plan_from_cut_links, plan_from_fragments, spectral_bisect)
from .interfaces import (ANNOTATION_KINDS, INFER, Annotation, CutSpec,
                         dump_cut_spec, load_cut_file, parse_cut_spec)

__all__ = [
    "PartitionPlan", "auto_partition", "bfs_rings", "fattree_pods",
    "plan_from_cut_links", "plan_from_fragments", "spectral_bisect",
    "ANNOTATION_KINDS", "INFER", "Annotation", "CutSpec",
    "dump_cut_spec", "load_cut_file", "parse_cut_spec",
]
