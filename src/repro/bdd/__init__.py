"""Hash-consed BDD/MTBDD engine (paper §5.1, fig 11).

Two interchangeable engines implement the same manager API:

* :class:`~repro.bdd.arena.ArenaBddManager` (default) — flat int-array
  arena with open-addressed unique/op tables: ~3x lower retained memory,
  cheap snapshots, and vectorised bulk analyses when numpy is available.
* :class:`~repro.bdd.manager.BddManager` — the original object engine,
  kept as the executable semantic spec and cross-checked against the
  arena by ``tests/bdd/test_arena_equivalence.py``; its dict/list hot
  paths run on CPython's C internals, so it still wins on scalar op
  throughput (see EXPERIMENTS.md, PR 6).

Select with ``NV_BDD_ENGINE=object|arena`` (see :func:`make_manager`).
"""

import os

from .arena import ArenaBddManager
from .manager import BddManager, LEAF_LEVEL

__all__ = ["ArenaBddManager", "BddManager", "LEAF_LEVEL", "engine_hint",
           "make_manager"]

_ENGINES = {"object": BddManager, "arena": ArenaBddManager}

#: One-line description of the most recently constructed manager (engine,
#: numpy availability, frontier thresholds).  ``repro.observatory`` copies
#: it into the RunRecord env fingerprint so ``repro runs diff`` can
#: attribute a timing delta to an engine-choice difference — fig13b runs
#: ~1.3x slower on ``arena`` than ``object`` when numpy is unavailable
#: (BENCH_pr10.json), which is invisible if records only say "arena".
_last_hint: str | None = None


def engine_name() -> str:
    """The engine selected by ``NV_BDD_ENGINE`` (default ``arena``)."""
    name = os.environ.get("NV_BDD_ENGINE", "arena").strip().lower() or "arena"
    if name not in _ENGINES:
        raise ValueError(
            f"NV_BDD_ENGINE must be one of {sorted(_ENGINES)}, got {name!r}")
    return name


def engine_hint() -> str | None:
    """The construction hint left by the last :func:`make_manager` call
    (``None`` until a manager has been built in this process)."""
    return _last_hint


def make_manager(**kwargs):
    """Construct the BDD manager selected by ``NV_BDD_ENGINE``.

    The environment variable is read per call (not at import), so tests can
    flip engines with ``monkeypatch.setenv``.
    """
    global _last_hint
    name = engine_name()
    mgr = _ENGINES[name](**kwargs)
    if name == "arena":
        np = mgr._np
        if np is None:
            _last_hint = "arena+scalar"
        else:
            _last_hint = (f"arena+numpy-{np.__version__}"
                          f"(frontier_min={mgr._frontier_min},"
                          f"width={mgr._frontier_width})")
    else:
        _last_hint = name
    return mgr
