"""Hash-consed BDD/MTBDD engine (paper §5.1, fig 11)."""

from .manager import BddManager, LEAF_LEVEL

__all__ = ["BddManager", "LEAF_LEVEL"]
