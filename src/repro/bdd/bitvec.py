"""Symbolic bitvector arithmetic over BDDs.

Used to evaluate NV expressions symbolically over a map's key bits, which is
how ``mapIte`` key predicates become BDDs (fig 11b of the paper).  Bitvectors
are lists of boolean BDD node ids, most-significant bit first (matching the
paper's fig 11, where ``b2`` — the MSB — is tested at the top).
"""

from __future__ import annotations

from .arena import ArenaBddManager
from .manager import BddManager

#: Either engine works here: bitvector arithmetic only uses the shared
#: manager API (``true``/``false``/``var``/boolean ops).
AnyBddManager = BddManager | ArenaBddManager


def const_bits(mgr: AnyBddManager, value: int, width: int) -> list[int]:
    """The constant ``value`` as a vector of TRUE/FALSE terminals."""
    if value < 0:
        value &= (1 << width) - 1
    return [mgr.true if (value >> (width - 1 - i)) & 1 else mgr.false
            for i in range(width)]


def var_bits(mgr: AnyBddManager, first_level: int, width: int) -> list[int]:
    """Fresh variables at consecutive levels, MSB first."""
    return [mgr.var(first_level + i) for i in range(width)]


def bits_to_int(mgr: AnyBddManager, bits: list[int]) -> int | None:
    """If every bit is a constant, return the integer value, else None."""
    value = 0
    for b in bits:
        if b == mgr.true:
            value = (value << 1) | 1
        elif b == mgr.false:
            value = value << 1
        else:
            return None
    return value


def eq(mgr: AnyBddManager, a: list[int], b: list[int]) -> int:
    """BDD for bitwise equality of two equal-width vectors."""
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    result = mgr.true
    # Compare from LSB so the final conjunction is rooted near the MSB,
    # keeping the diagram ordered.
    for x, y in zip(reversed(a), reversed(b)):
        result = mgr.band(result, mgr.biff(x, y))
    return result


def ult(mgr: AnyBddManager, a: list[int], b: list[int]) -> int:
    """BDD for unsigned a < b."""
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    # From LSB to MSB: lt = (~a & b) | (a == b) & lt_rest
    result = mgr.false
    for x, y in zip(reversed(a), reversed(b)):
        lt_here = mgr.band(mgr.bnot(x), y)
        result = mgr.bor(lt_here, mgr.band(mgr.biff(x, y), result))
    return result


def ule(mgr: AnyBddManager, a: list[int], b: list[int]) -> int:
    """BDD for unsigned a <= b."""
    return mgr.bor(ult(mgr, a, b), eq(mgr, a, b))


def add(mgr: AnyBddManager, a: list[int], b: list[int]) -> list[int]:
    """Ripple-carry addition, wrapping modulo 2**width."""
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    out: list[int] = []
    carry = mgr.false
    for x, y in zip(reversed(a), reversed(b)):
        s = mgr.bxor(mgr.bxor(x, y), carry)
        carry = mgr.bor(mgr.band(x, y), mgr.band(carry, mgr.bxor(x, y)))
        out.append(s)
    out.reverse()
    return out


def sub(mgr: AnyBddManager, a: list[int], b: list[int]) -> list[int]:
    """Wrapping subtraction a - b (two's complement)."""
    out: list[int] = []
    borrow = mgr.false
    for x, y in zip(reversed(a), reversed(b)):
        d = mgr.bxor(mgr.bxor(x, y), borrow)
        borrow = mgr.bor(mgr.band(mgr.bnot(x), y), mgr.band(borrow, mgr.bnot(mgr.bxor(x, y))))
        out.append(d)
    out.reverse()
    return out


def ite_bits(mgr: AnyBddManager, cond: int, a: list[int], b: list[int]) -> list[int]:
    """Bitwise if-then-else."""
    if len(a) != len(b):
        raise ValueError(f"width mismatch: {len(a)} vs {len(b)}")
    return [mgr.bite(cond, x, y) for x, y in zip(a, b)]


def lt_const(mgr: AnyBddManager, bits: list[int], bound: int) -> int:
    """BDD for the unsigned constraint ``bits < bound``.

    Used as the domain restriction for maps whose key space (e.g. node ids)
    does not fill the full bit width.  A bound of 2**width or more is
    trivially true (the naive encoding would wrap it to zero — e.g. a
    4-node network whose node ids occupy exactly 2 bits).
    """
    if bound >= (1 << len(bits)):
        return mgr.true
    if bound <= 0:
        return mgr.false
    return ult(mgr, bits, const_bits(mgr, bound, len(bits)))
