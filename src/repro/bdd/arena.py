"""Arena-backed BDD/MTBDD manager: flat int arrays, open-addressed tables.

This is the structure-of-arrays rewrite of :class:`repro.bdd.manager.BddManager`
(the NV §5.1 hash-consed diagram semantics are the unchanged contract; the
object engine remains the executable spec and the two are cross-checked by
``tests/bdd/test_arena_equivalence.py``).  Differences are purely
representational:

* A node is an index into three parallel ``array('i')`` columns ``var``,
  ``lo``, ``hi``.  Internal nodes store the tested level and two child ids;
  leaves store ``LEAF_LEVEL`` in ``var``, a packed reference into the leaf
  value list in ``lo`` and ``-1`` in ``hi``.  Contiguous int32 storage is
  cache-friendly (node ids are dense and children always precede parents)
  and snapshots of a diagram are two ``bytes`` blobs plus a leaf list.
* The unique table and the per-operation memo caches are open-addressed
  linear-probe int arrays with power-of-two capacity, multiplicative
  hashing and amortised rehash on load factor — no Python dicts, no tuple
  keys, no per-entry allocation on the hot path.
* The ``apply1``/``apply2``/``map_ite`` and boolean-op inner loops are
  closure-recursive over locals bound to the arena columns: per node-pair
  they execute a handful of index/compare bytecodes instead of the object
  engine's frame tuples and explicit result stacks.
* Bulk analyses (reachability marking, ``sat_count``, ``leaves``,
  ``node_count``) run vectorised over ``numpy`` views of the arena when
  numpy is importable, with a pure-``array`` fallback so ``dependencies =
  []`` installs keep working (force the fallback with ``NV_BDD_NUMPY=0``).

Select the engine with ``NV_BDD_ENGINE=object|arena`` (see
:func:`repro.bdd.make_manager`).
"""

from __future__ import annotations

import itertools
import os
from array import array
from typing import Any, Callable, Iterator

from .. import metrics, obs
from .manager import GROWTH_SAMPLE_INTERVAL, LEAF_LEVEL, snapshot_bytes

__all__ = ["ArenaBddManager", "LEAF_LEVEL", "numpy_or_none"]

_manager_ids = itertools.count(1)

#: Node ids are packed two (or three) to an int key; 30 bits each.
_KEY_SHIFT = 30
_KEY_MASK = (1 << _KEY_SHIFT) - 1

#: Multipliers for the open-addressed tables.  Two constraints: they must
#: stay below 2**30 so ``id * mult`` keeps both operands on CPython's
#: single-digit fast multiply path, and their *low* 20+ bits must be well
#: mixed, because the slot index is the masked low bits of the sum — a
#: multiplier congruent to a small constant mod the capacity (e.g. the
#: classic 12582917, which is 5 mod 2**20) degenerates to a tiny stride on
#: dense sequential node ids and clusters the linear probes.
_MULT_A = 0x1B873593
_MULT_B = 0x19D699A5
_MULT_C = 741457

#: Smallest table capacities (power of two).  Managers are created per
#: analysis context, so the empty footprint stays a few KiB.
_UNIQUE_INIT_CAP = 1 << 10
_CACHE_INIT_CAP = 1 << 8

#: Sub-DAGs at or below this size use the Python reachability walk even when
#: numpy is present: the vectorised marking pass costs O(arena), which dwarfs
#: a small traversal (``leaf_groups`` issues many tiny ``sat_count`` calls).
_NP_REACHABLE_CUTOFF = 8192


def numpy_or_none():
    """The ``numpy`` module when importable and not disabled via
    ``NV_BDD_NUMPY=0``, else ``None`` (pure-``array`` fallback paths)."""
    if os.environ.get("NV_BDD_NUMPY", "").strip() == "0":
        return None
    try:
        import numpy
    except ImportError:  # optional dependency: dependencies = [] installs
        return None
    return numpy


def _live_gauges(m: "ArenaBddManager") -> dict[str, float]:
    """Heartbeat gauges: structural sizes plus the arena-specific capacity
    and load-factor signals the growth samples also carry."""
    return {
        "bdd.nodes": len(m._var),
        "bdd.unique_entries": m._unique_n,
        "bdd.unique_capacity": m._unique_cap,
        "bdd.unique_load": m._unique_n / m._unique_cap,
        "bdd.leaves": len(m._leaf_values),
        "bdd.op_cache_entries": m.op_cache_size(),
        "bdd.op_cache_capacity": m.op_cache_capacity(),
        "bdd.op_ops": m.op_hits + m.op_misses,
        "bdd.apply_ops": m.apply_hits + m.apply_misses,
    }


class ArenaBddManager:
    """Drop-in replacement for :class:`~repro.bdd.manager.BddManager` over a
    flat integer arena (see module docstring).  Public API, node-id
    semantics (hash-consing, canonical reduction, leaf sharing) and
    instrumentation counters match the object engine exactly."""

    def __init__(self, op_cache_limit: int = 1 << 20) -> None:
        # Node arena: parallel int32 columns.
        self._var = array("i")
        self._lo = array("i")
        self._hi = array("i")
        # Leaf store: values are arbitrary hashable Python objects, so they
        # live outside the int arena; _lo[n] is the index in here.
        self._leaf_values: list[Any] = []
        self._leaf_table: dict[Any, int] = {}
        # Open-addressed unique table: slots hold node ids (-1 = empty);
        # keys are compared against the arena columns, so nothing besides
        # the id is stored per entry.
        self._unique_cap = _UNIQUE_INIT_CAP
        self._unique = array("i", [-1]) * self._unique_cap
        self._unique_n = 0
        # Per-op memo caches: parallel key/value int arrays (-1 = empty).
        # band/bxor pack (a, b) into one int64 key; bite splits (c, t, e)
        # across an int64 and an int32 column; bnot keys on the operand.
        self.op_cache_limit = op_cache_limit
        self._init_op_caches()
        # Analysis caches (plain dicts, cold path): sat counts per
        # (root, num_vars) and the cross-call leaf_groups product memos.
        self._satcount_cache: dict[tuple[int, int], int] = {}
        self._leaf_groups_memo: dict[int, dict[int, dict[Any, int]]] = {}
        # Callbacks run by clear_caches so owners of derived caches (e.g.
        # MapContext's frozen-snapshot cache) can drop them in lockstep.
        self._clear_hooks: list[Callable[[], None]] = []
        # Instrumentation (same counters as the object engine).
        self.op_hits = 0
        self.op_misses = 0
        self.apply_hits = 0
        self.apply_misses = 0
        # Table-health telemetry (flushed by repro.telemetry when
        # NV_TELEMETRY is on): rehash/clear events are rare, so these plain
        # increments are free; probe-length histograms are *recomputed* by
        # scanning the tables on demand, never recorded per lookup.
        self.unique_rehashes = 0
        self.op_rehashes = 0
        self.op_cache_clears = 0
        self._next_growth_sample = GROWTH_SAMPLE_INTERVAL
        metrics.register_weak_provider(
            f"bdd.arena.{next(_manager_ids)}", self, _live_gauges)
        self.false = self.leaf(False)
        self.true = self.leaf(True)

    def _init_op_caches(self) -> None:
        cap = _CACHE_INIT_CAP
        self._not_keys = array("i", [-1]) * cap
        self._not_vals = array("i", [0]) * cap
        self._not_cap, self._not_n = cap, 0
        self._and_keys = array("q", [-1]) * cap
        self._and_vals = array("i", [0]) * cap
        self._and_cap, self._and_n = cap, 0
        self._xor_keys = array("q", [-1]) * cap
        self._xor_vals = array("i", [0]) * cap
        self._xor_cap, self._xor_n = cap, 0
        self._ite_keys1 = array("q", [-1]) * cap
        self._ite_keys2 = array("i", [0]) * cap
        self._ite_vals = array("i", [0]) * cap
        self._ite_cap, self._ite_n = cap, 0

    # ------------------------------------------------------------------
    # Growth sampling (obs timeline)
    # ------------------------------------------------------------------

    def _growth_sample(self) -> None:
        self._next_growth_sample = len(self._var) + GROWTH_SAMPLE_INTERVAL
        if obs.is_enabled():
            obs.event("bdd.growth", nodes=len(self._var),
                      unique_entries=self._unique_n,
                      unique_capacity=self._unique_cap,
                      unique_load=round(self._unique_n / self._unique_cap, 3),
                      leaves=len(self._leaf_values),
                      op_cache_entries=self.op_cache_size(),
                      op_cache_capacity=self.op_cache_capacity(),
                      op_cache_hits=self.op_hits,
                      op_cache_misses=self.op_misses)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def leaf(self, value: Any) -> int:
        """Return the hash-consed leaf node carrying ``value``."""
        try:
            node = self._leaf_table.get(value)
        except TypeError as exc:  # unhashable value
            raise TypeError(
                f"MTBDD leaf values must be hashable, got {value!r}") from exc
        if node is not None:
            return node
        node = len(self._var)
        self._var.append(LEAF_LEVEL)
        self._lo.append(len(self._leaf_values))
        self._hi.append(-1)
        self._leaf_values.append(value)
        self._leaf_table[value] = node
        return node

    def mk(self, level: int, lo: int, hi: int) -> int:
        """Return the (reduced, hash-consed) node testing ``level``."""
        if lo == hi:
            return lo
        var_a = self._var
        lo_a = self._lo
        hi_a = self._hi
        table = self._unique
        mask = self._unique_cap - 1
        h = (lo * 461845907 + hi * 433494437 + level) & mask
        while True:
            n = table[h]
            if n < 0:
                break
            if lo_a[n] == lo and hi_a[n] == hi and var_a[n] == level:
                return n
            h = (h + 1) & mask
        node = len(var_a)
        var_a.append(level)
        lo_a.append(lo)
        hi_a.append(hi)
        table[h] = node
        self._unique_n += 1
        if 3 * self._unique_n > 2 * self._unique_cap:
            self._grow_unique()
        if node >= self._next_growth_sample:
            self._growth_sample()
        return node

    def _grow_unique(self) -> None:
        self.unique_rehashes += 1
        cap = self._unique_cap * 2
        table = array("i", [-1]) * cap
        mask = cap - 1
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        for n in range(len(var_a)):
            if var_a[n] == LEAF_LEVEL:
                continue
            h = (lo_a[n] * 461845907 + hi_a[n] * 433494437 + var_a[n]) & mask
            while table[h] >= 0:
                h = (h + 1) & mask
            table[h] = n
        self._unique = table
        self._unique_cap = cap

    def var(self, level: int) -> int:
        return self.mk(level, self.false, self.true)

    def nvar(self, level: int) -> int:
        return self.mk(level, self.true, self.false)

    # ------------------------------------------------------------------
    # Node inspection
    # ------------------------------------------------------------------

    def is_leaf(self, node: int) -> bool:
        return self._var[node] == LEAF_LEVEL

    def leaf_value(self, node: int) -> Any:
        if self._var[node] != LEAF_LEVEL:
            raise ValueError(f"node {node} is not a leaf")
        return self._leaf_values[self._lo[node]]

    def level(self, node: int) -> int:
        return self._var[node]

    def lo(self, node: int) -> int:
        if self._var[node] == LEAF_LEVEL:
            return -1
        return self._lo[node]

    def hi(self, node: int) -> int:
        return self._hi[node]

    def size(self) -> int:
        return len(self._var)

    def node_count(self, root: int) -> int:
        """Number of distinct nodes (incl. leaves) reachable from ``root``."""
        return len(self._reachable(root))

    # ------------------------------------------------------------------
    # Reachability marking (numpy-vectorised with array fallback)
    # ------------------------------------------------------------------

    def _reachable(self, root: int):
        """Ids of nodes reachable from ``root``, ascending.  Children always
        precede parents in the arena, so ascending id order is a topological
        order of the sub-DAG (leaves first).

        The vectorised marking pass costs O(arena) regardless of the
        sub-DAG, so small diagrams (the common ``leaf_groups`` case) walk a
        capped Python DFS first and only fall through to numpy when the
        sub-DAG turns out to be large.
        """
        np = numpy_or_none()
        if np is None:
            return self._reachable_py(root)
        small = self._reachable_py_capped(root, _NP_REACHABLE_CUTOFF)
        if small is not None:
            return np.array(small, dtype=np.int64)
        var = np.frombuffer(self._var, dtype=np.int32)
        lo = np.frombuffer(self._lo, dtype=np.int32)
        hi = np.frombuffer(self._hi, dtype=np.int32)
        marked = np.zeros(len(self._var), dtype=bool)
        marked[root] = True
        frontier = np.array([root], dtype=np.int64)
        while frontier.size:
            # Only internal nodes have child edges: a leaf's lo column holds
            # a leaf-store index, not a node id, and must not be followed.
            inner = frontier[var[frontier] != LEAF_LEVEL]
            if inner.size == 0:
                break
            kids = np.concatenate((lo[inner], hi[inner])).astype(np.int64)
            kids = kids[~marked[kids]]
            if kids.size == 0:
                break
            marked[kids] = True
            frontier = np.unique(kids)
        return np.nonzero(marked)[0]

    def _reachable_py(self, root: int) -> list[int]:
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        seen = {root}
        stack = [root]
        push = stack.append
        pop = stack.pop
        add = seen.add
        while stack:
            n = pop()
            if var_a[n] != LEAF_LEVEL:
                c = lo_a[n]
                if c not in seen:
                    add(c)
                    push(c)
                c = hi_a[n]
                if c not in seen:
                    add(c)
                    push(c)
        return sorted(seen)

    def _reachable_py_capped(self, root: int, cap: int) -> list[int] | None:
        """Like :meth:`_reachable_py`, but give up (return None) once more
        than ``cap`` nodes are discovered."""
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        seen = {root}
        stack = [root]
        push = stack.append
        pop = stack.pop
        add = seen.add
        while stack:
            n = pop()
            if var_a[n] != LEAF_LEVEL:
                c = lo_a[n]
                if c not in seen:
                    add(c)
                    push(c)
                c = hi_a[n]
                if c not in seen:
                    add(c)
                    push(c)
                if len(seen) > cap:
                    return None
        return sorted(seen)

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def bnot(self, a: int) -> int:
        keys = self._not_keys
        mask = self._not_cap - 1
        h = a * _MULT_A & mask
        while True:
            k = keys[h]
            if k == a:
                self.op_hits += 1
                return self._not_vals[h]
            if k < 0:
                break
            h = (h + 1) & mask
        self.op_misses += 1
        if self._var[a] == LEAF_LEVEL:
            result = self.leaf(not self._leaf_values[self._lo[a]])
        else:
            result = self.mk(self._var[a], self.bnot(self._lo[a]),
                             self.bnot(self._hi[a]))
        self._not_store(a, result)
        return result

    def _not_store(self, key: int, value: int) -> None:
        if self._not_n >= self.op_cache_limit:
            cap = self._not_cap
            self._not_keys = array("i", [-1]) * cap
            self._not_n = 0
            self.op_cache_clears += 1
        elif 3 * self._not_n > 2 * self._not_cap:
            self.op_rehashes += 1
            self._not_keys, self._not_vals, self._not_cap = _rehash(
                self._not_keys, self._not_vals, self._not_cap, "i")
        keys = self._not_keys
        mask = self._not_cap - 1
        h = key * _MULT_A & mask
        while keys[h] >= 0:
            if keys[h] == key:
                self._not_vals[h] = value
                return
            h = (h + 1) & mask
        keys[h] = key
        self._not_vals[h] = value
        self._not_n += 1

    def band(self, a: int, b: int) -> int:
        if a == b:
            return a
        false = self.false
        if a == false or b == false:
            return false
        if a == self.true:
            return b
        if b == self.true:
            return a
        if a > b:
            a, b = b, a
        key = (a << _KEY_SHIFT) | b
        keys = self._and_keys
        mask = self._and_cap - 1
        h = (a * _MULT_A + b * _MULT_B) & mask
        while True:
            k = keys[h]
            if k == key:
                self.op_hits += 1
                return self._and_vals[h]
            if k < 0:
                break
            h = (h + 1) & mask
        self.op_misses += 1
        var_a = self._var
        la, lb = var_a[a], var_a[b]
        if la < lb:
            lvl = la
            r = self.mk(lvl, self.band(self._lo[a], b),
                        self.band(self._hi[a], b))
        elif lb < la:
            lvl = lb
            r = self.mk(lvl, self.band(a, self._lo[b]),
                        self.band(a, self._hi[b]))
        else:
            r = self.mk(la, self.band(self._lo[a], self._lo[b]),
                        self.band(self._hi[a], self._hi[b]))
        self._and_store(key, r)
        return r

    def _and_store(self, key: int, value: int) -> None:
        if self._and_n >= self.op_cache_limit:
            self._and_keys = array("q", [-1]) * self._and_cap
            self._and_n = 0
            self.op_cache_clears += 1
        elif 3 * self._and_n > 2 * self._and_cap:
            self.op_rehashes += 1
            self._and_keys, self._and_vals, self._and_cap = _rehash(
                self._and_keys, self._and_vals, self._and_cap, "q")
        keys = self._and_keys
        mask = self._and_cap - 1
        h = ((key >> _KEY_SHIFT) * _MULT_A + (key & _KEY_MASK) * _MULT_B) & mask
        while keys[h] >= 0:
            if keys[h] == key:
                self._and_vals[h] = value
                return
            h = (h + 1) & mask
        keys[h] = key
        self._and_vals[h] = value
        self._and_n += 1

    def bor(self, a: int, b: int) -> int:
        return self.bnot(self.band(self.bnot(a), self.bnot(b)))

    def bxor(self, a: int, b: int) -> int:
        if a == b:
            return self.false
        if a == self.false:
            return b
        if b == self.false:
            return a
        if a == self.true:
            return self.bnot(b)
        if b == self.true:
            return self.bnot(a)
        if a > b:
            a, b = b, a
        key = (a << _KEY_SHIFT) | b
        keys = self._xor_keys
        mask = self._xor_cap - 1
        h = (a * _MULT_A + b * _MULT_B) & mask
        while True:
            k = keys[h]
            if k == key:
                self.op_hits += 1
                return self._xor_vals[h]
            if k < 0:
                break
            h = (h + 1) & mask
        self.op_misses += 1
        var_a = self._var
        la, lb = var_a[a], var_a[b]
        lvl = la if la < lb else lb
        a0, a1 = (self._lo[a], self._hi[a]) if la == lvl else (a, a)
        b0, b1 = (self._lo[b], self._hi[b]) if lb == lvl else (b, b)
        r = self.mk(lvl, self.bxor(a0, b0), self.bxor(a1, b1))
        self._xor_store(key, r)
        return r

    def _xor_store(self, key: int, value: int) -> None:
        if self._xor_n >= self.op_cache_limit:
            self._xor_keys = array("q", [-1]) * self._xor_cap
            self._xor_n = 0
            self.op_cache_clears += 1
        elif 3 * self._xor_n > 2 * self._xor_cap:
            self.op_rehashes += 1
            self._xor_keys, self._xor_vals, self._xor_cap = _rehash(
                self._xor_keys, self._xor_vals, self._xor_cap, "q")
        keys = self._xor_keys
        mask = self._xor_cap - 1
        h = ((key >> _KEY_SHIFT) * _MULT_A + (key & _KEY_MASK) * _MULT_B) & mask
        while keys[h] >= 0:
            if keys[h] == key:
                self._xor_vals[h] = value
                return
            h = (h + 1) & mask
        keys[h] = key
        self._xor_vals[h] = value
        self._xor_n += 1

    def bimplies(self, a: int, b: int) -> int:
        return self.bor(self.bnot(a), b)

    def biff(self, a: int, b: int) -> int:
        return self.bnot(self.bxor(a, b))

    def bite(self, c: int, t: int, e: int) -> int:
        if c == self.true:
            return t
        if c == self.false:
            return e
        if t == e:
            return t
        key1 = (c << _KEY_SHIFT) | t
        keys1 = self._ite_keys1
        keys2 = self._ite_keys2
        mask = self._ite_cap - 1
        h = (c * _MULT_A + t * _MULT_B + e * _MULT_C) & mask
        while True:
            k = keys1[h]
            if k == key1 and keys2[h] == e:
                self.op_hits += 1
                return self._ite_vals[h]
            if k < 0:
                break
            h = (h + 1) & mask
        self.op_misses += 1
        var_a = self._var
        lvl = min(var_a[c], var_a[t], var_a[e])
        c0, c1 = self._cof(c, lvl)
        t0, t1 = self._cof(t, lvl)
        e0, e1 = self._cof(e, lvl)
        r = self.mk(lvl, self.bite(c0, t0, e0), self.bite(c1, t1, e1))
        self._ite_store(key1, e, r)
        return r

    def _ite_store(self, key1: int, key2: int, value: int) -> None:
        if self._ite_n >= self.op_cache_limit:
            cap = self._ite_cap
            self._ite_keys1 = array("q", [-1]) * cap
            self._ite_keys2 = array("i", [0]) * cap
            self._ite_n = 0
            self.op_cache_clears += 1
        elif 3 * self._ite_n > 2 * self._ite_cap:
            self.op_rehashes += 1
            cap = self._ite_cap * 2
            mask = cap - 1
            k1 = array("q", [-1]) * cap
            k2 = array("i", [0]) * cap
            vals = array("i", [0]) * cap
            old1, old2, oldv = self._ite_keys1, self._ite_keys2, self._ite_vals
            for i in range(self._ite_cap):
                ok = old1[i]
                if ok < 0:
                    continue
                h = ((ok >> _KEY_SHIFT) * _MULT_A
                     + (ok & _KEY_MASK) * _MULT_B + old2[i] * _MULT_C) & mask
                while k1[h] >= 0:
                    h = (h + 1) & mask
                k1[h] = ok
                k2[h] = old2[i]
                vals[h] = oldv[i]
            self._ite_keys1, self._ite_keys2, self._ite_vals = k1, k2, vals
            self._ite_cap = cap
        keys1 = self._ite_keys1
        mask = self._ite_cap - 1
        h = ((key1 >> _KEY_SHIFT) * _MULT_A
             + (key1 & _KEY_MASK) * _MULT_B + key2 * _MULT_C) & mask
        while keys1[h] >= 0:
            if keys1[h] == key1 and self._ite_keys2[h] == key2:
                self._ite_vals[h] = value
                return
            h = (h + 1) & mask
        keys1[h] = key1
        self._ite_keys2[h] = key2
        self._ite_vals[h] = value
        self._ite_n += 1

    def _cof(self, node: int, lvl: int) -> tuple[int, int]:
        if self._var[node] == lvl:
            return self._lo[node], self._hi[node]
        return node, node

    # ------------------------------------------------------------------
    # MTBDD operations (closure-recursive kernels)
    # ------------------------------------------------------------------

    def apply1(self, fn: Callable[[Any], Any], root: int,
               memo: dict[int, int] | None = None) -> int:
        """Map ``fn`` over every leaf of ``root`` (invoked once per distinct
        leaf; ``memo`` is keyed by node id and shareable across calls with
        the same ``fn``)."""
        if memo is None:
            memo = {}
        var_a = self._var
        lo_a = self._lo
        hi_a = self._hi
        leaf_values = self._leaf_values
        memo_get = memo.get
        mk = self.mk
        leaf = self.leaf
        utable = self._unique
        umask = self._unique_cap - 1
        hits = 0
        misses = 0

        # Memo lookups happen *before* recursing, so the number of Python
        # calls is proportional to cache misses, not to visited edges; the
        # unique-table probe is inlined (see mk) so the hot path constructs
        # nodes without a method call.
        def rec(n: int) -> int:
            nonlocal hits, misses, utable, umask
            misses += 1
            if var_a[n] == LEAF_LEVEL:
                r = leaf(fn(leaf_values[lo_a[n]]))
            else:
                c = lo_a[n]
                r0 = memo_get(c)
                if r0 is None:
                    r0 = rec(c)
                else:
                    hits += 1
                c = hi_a[n]
                r1 = memo_get(c)
                if r1 is None:
                    r1 = rec(c)
                else:
                    hits += 1
                if r0 == r1:
                    r = r0
                else:
                    v = var_a[n]
                    h = (r0 * 461845907 + r1 * 433494437 + v) & umask
                    while True:
                        u = utable[h]
                        if u < 0:
                            r = mk(v, r0, r1)
                            if self._unique is not utable:  # rehashed
                                utable = self._unique
                                umask = self._unique_cap - 1
                            break
                        if lo_a[u] == r0 and hi_a[u] == r1 and var_a[u] == v:
                            r = u
                            break
                        h = (h + 1) & umask
            memo[n] = r
            return r

        out = memo_get(root)
        if out is None:
            out = rec(root)
        else:
            hits += 1
        self.apply_hits += hits
        self.apply_misses += misses
        return out

    def apply2(self, fn: Callable[[Any, Any], Any], a: int, b: int,
               memo: dict[int, int] | None = None) -> int:
        """Combine two diagrams leaf-wise with ``fn``.  ``memo`` is keyed by
        the packed pair ``(x << 30) | y``; share it only between calls with
        the same ``fn``."""
        if memo is None:
            memo = {}
        key0 = (a << _KEY_SHIFT) | b
        out = memo.get(key0)
        if out is not None:
            self.apply_hits += 1
            return out
        var_a = self._var
        lo_a = self._lo
        hi_a = self._hi
        var_app = var_a.append
        lo_app = lo_a.append
        hi_app = hi_a.append
        leaf_values = self._leaf_values
        memo_get = memo.get
        leaf = self.leaf
        utable = self._unique
        umask = self._unique_cap - 1
        hits = 0
        misses = 0
        # Iterative kernel: no Python call per node-pair.  Memos are probed
        # *before* a child frame is pushed, so hit edges cost one dict probe
        # and no frame; node construction (unique probe + arena append) is
        # inlined.  Frames: (0, x, y) expand a pair known absent from the
        # memo; (1, key, lvl) combine the two results below; (2, r, 0)
        # re-emit a memo-hit result in post-order position.
        stack: list[tuple[int, int, int]] = [(0, a, b)]
        results: list[int] = []
        push = stack.append
        emit = results.append
        pop_r = results.pop
        while stack:
            tag, f1, f2 = stack.pop()
            if tag == 0:
                # Re-probe: a sibling's subtree may have resolved this pair
                # between the pre-push probe and now.
                r = memo_get((f1 << _KEY_SHIFT) | f2)
                if r is not None:
                    hits += 1
                    emit(r)
                    continue
                misses += 1
                lx = var_a[f1]
                ly = var_a[f2]
                if lx < ly:
                    lvl = lx
                    x0 = lo_a[f1]
                    x1 = hi_a[f1]
                    y0 = y1 = f2
                elif ly < lx:
                    lvl = ly
                    x0 = x1 = f1
                    y0 = lo_a[f2]
                    y1 = hi_a[f2]
                elif lx != LEAF_LEVEL:
                    lvl = lx
                    x0 = lo_a[f1]
                    x1 = hi_a[f1]
                    y0 = lo_a[f2]
                    y1 = hi_a[f2]
                else:
                    r = leaf(fn(leaf_values[lo_a[f1]], leaf_values[lo_a[f2]]))
                    if self._unique is not utable:
                        # fn re-entered the manager (merge functions over
                        # map-valued routes build nodes) and forced a
                        # rehash; the inline inserts below must probe the
                        # live table or duplicate ids break hash-consing.
                        utable = self._unique
                        umask = self._unique_cap - 1
                    memo[(f1 << _KEY_SHIFT) | f2] = r
                    emit(r)
                    continue
                k0 = (x0 << _KEY_SHIFT) | y0
                r0 = memo_get(k0)
                k1 = (x1 << _KEY_SHIFT) | y1
                r1 = memo_get(k1)
                if r0 is not None:
                    hits += 1
                    if r1 is not None:
                        # Both children cached: combine in place.
                        hits += 1
                        if r0 == r1:
                            r = r0
                        else:
                            h = (r0 * 461845907 + r1 * 433494437 + lvl) & umask
                            while True:
                                u = utable[h]
                                if u < 0:
                                    r = len(var_a)
                                    var_app(lvl)
                                    lo_app(r0)
                                    hi_app(r1)
                                    utable[h] = r
                                    n = self._unique_n + 1
                                    self._unique_n = n
                                    if 3 * n > 2 * self._unique_cap:
                                        self._grow_unique()
                                        utable = self._unique
                                        umask = self._unique_cap - 1
                                    if r >= self._next_growth_sample:
                                        self._growth_sample()
                                    break
                                if lo_a[u] == r0 and hi_a[u] == r1 \
                                        and var_a[u] == lvl:
                                    r = u
                                    break
                                h = (h + 1) & umask
                        memo[(f1 << _KEY_SHIFT) | f2] = r
                        emit(r)
                        continue
                    push((1, (f1 << _KEY_SHIFT) | f2, lvl))
                    emit(r0)
                    push((0, x1, y1))
                elif r1 is not None:
                    hits += 1
                    push((1, (f1 << _KEY_SHIFT) | f2, lvl))
                    push((2, r1, 0))
                    push((0, x0, y0))
                else:
                    push((1, (f1 << _KEY_SHIFT) | f2, lvl))
                    push((0, x1, y1))
                    push((0, x0, y0))
            elif tag == 1:
                r1 = pop_r()
                r0 = pop_r()
                if r0 == r1:
                    r = r0
                else:
                    h = (r0 * 461845907 + r1 * 433494437 + f2) & umask
                    while True:
                        u = utable[h]
                        if u < 0:
                            r = len(var_a)
                            var_app(f2)
                            lo_app(r0)
                            hi_app(r1)
                            utable[h] = r
                            n = self._unique_n + 1
                            self._unique_n = n
                            if 3 * n > 2 * self._unique_cap:
                                self._grow_unique()
                                utable = self._unique
                                umask = self._unique_cap - 1
                            if r >= self._next_growth_sample:
                                self._growth_sample()
                            break
                        if lo_a[u] == r0 and hi_a[u] == r1 \
                                and var_a[u] == f2:
                            r = u
                            break
                        h = (h + 1) & umask
                memo[f1] = r
                emit(r)
            else:
                emit(f1)
        self.apply_hits += hits
        self.apply_misses += misses
        return results[0]

    def map_ite(self, pred: int, fn_true: Callable[[Any], Any],
                fn_false: Callable[[Any], Any], root: int,
                memo: dict[int, int] | None = None,
                memo_true: dict[int, int] | None = None,
                memo_false: dict[int, int] | None = None) -> int:
        """The NV ``mapIte`` primitive (fig 11 of the paper).

        ``memo`` (packed ``(pred << 30) | node`` keys) plus the two branch
        memos (``apply1`` keying) may be shared across calls with the same
        function pair — the simulator applies the same route policies every
        round, so cross-call sharing turns repeat rounds into cache hits.
        """
        if memo is None:
            memo = {}
        if memo_true is None:
            memo_true = {}
        if memo_false is None:
            memo_false = {}
        var_a = self._var
        lo_a = self._lo
        hi_a = self._hi
        leaf_values = self._leaf_values
        memo_get = memo.get
        true = self.true
        false = self.false
        mk = self.mk
        leaf = self.leaf
        hits = 0
        misses = 0

        memo_true_get = memo_true.get
        memo_false_get = memo_false.get
        utable = self._unique
        umask = self._unique_cap - 1

        # All three kernels look memos up *before* recursing (Python calls
        # ∝ cache misses, not visited edges) and inline the unique-table
        # probe (see mk) so node construction needs no method call.
        def rec_t(n: int) -> int:  # apply1(fn_true) specialised
            nonlocal hits, misses, utable, umask
            misses += 1
            if var_a[n] == LEAF_LEVEL:
                r = leaf(fn_true(leaf_values[lo_a[n]]))
            else:
                c = lo_a[n]
                r0 = memo_true_get(c)
                if r0 is None:
                    r0 = rec_t(c)
                else:
                    hits += 1
                c = hi_a[n]
                r1 = memo_true_get(c)
                if r1 is None:
                    r1 = rec_t(c)
                else:
                    hits += 1
                if r0 == r1:
                    r = r0
                else:
                    v = var_a[n]
                    h = (r0 * 461845907 + r1 * 433494437 + v) & umask
                    while True:
                        u = utable[h]
                        if u < 0:
                            r = mk(v, r0, r1)
                            if self._unique is not utable:  # rehashed
                                utable = self._unique
                                umask = self._unique_cap - 1
                            break
                        if lo_a[u] == r0 and hi_a[u] == r1 and var_a[u] == v:
                            r = u
                            break
                        h = (h + 1) & umask
            memo_true[n] = r
            return r

        def rec_f(n: int) -> int:  # apply1(fn_false) specialised
            nonlocal hits, misses, utable, umask
            misses += 1
            if var_a[n] == LEAF_LEVEL:
                r = leaf(fn_false(leaf_values[lo_a[n]]))
            else:
                c = lo_a[n]
                r0 = memo_false_get(c)
                if r0 is None:
                    r0 = rec_f(c)
                else:
                    hits += 1
                c = hi_a[n]
                r1 = memo_false_get(c)
                if r1 is None:
                    r1 = rec_f(c)
                else:
                    hits += 1
                if r0 == r1:
                    r = r0
                else:
                    v = var_a[n]
                    h = (r0 * 461845907 + r1 * 433494437 + v) & umask
                    while True:
                        u = utable[h]
                        if u < 0:
                            r = mk(v, r0, r1)
                            if self._unique is not utable:  # rehashed
                                utable = self._unique
                                umask = self._unique_cap - 1
                            break
                        if lo_a[u] == r0 and hi_a[u] == r1 and var_a[u] == v:
                            r = u
                            break
                        h = (h + 1) & umask
            memo_false[n] = r
            return r

        def rec(p: int, m: int, key: int) -> int:
            nonlocal hits, utable, umask
            if p == true:
                r = memo_true_get(m)
                if r is None:
                    r = rec_t(m)
                else:
                    hits += 1
            elif p == false:
                r = memo_false_get(m)
                if r is None:
                    r = rec_f(m)
                else:
                    hits += 1
            else:
                lp = var_a[p]
                lm = var_a[m]
                if lp < lm:
                    lvl = lp
                    p0, p1 = lo_a[p], hi_a[p]
                    m0 = m1 = m
                elif lm < lp:
                    lvl = lm
                    p0 = p1 = p
                    m0, m1 = lo_a[m], hi_a[m]
                else:
                    lvl = lp
                    p0, p1 = lo_a[p], hi_a[p]
                    m0, m1 = lo_a[m], hi_a[m]
                k = (p0 << _KEY_SHIFT) | m0
                r0 = memo_get(k)
                if r0 is None:
                    r0 = rec(p0, m0, k)
                k = (p1 << _KEY_SHIFT) | m1
                r1 = memo_get(k)
                if r1 is None:
                    r1 = rec(p1, m1, k)
                if r0 == r1:
                    r = r0
                else:
                    h = (r0 * 461845907 + r1 * 433494437 + lvl) & umask
                    while True:
                        u = utable[h]
                        if u < 0:
                            r = mk(lvl, r0, r1)
                            if self._unique is not utable:  # rehashed
                                utable = self._unique
                                umask = self._unique_cap - 1
                            break
                        if lo_a[u] == r0 and hi_a[u] == r1 and var_a[u] == lvl:
                            r = u
                            break
                        h = (h + 1) & umask
            memo[key] = r
            return r

        key0 = (pred << _KEY_SHIFT) | root
        out = memo_get(key0)
        if out is None:
            out = rec(pred, root, key0)
        self.apply_hits += hits
        self.apply_misses += misses
        return out

    # ------------------------------------------------------------------
    # Path evaluation
    # ------------------------------------------------------------------

    def restrict_eval(self, root: int, assignment: Callable[[int], bool]) -> Any:
        var_a = self._var
        n = root
        while var_a[n] != LEAF_LEVEL:
            n = self._hi[n] if assignment(var_a[n]) else self._lo[n]
        return self._leaf_values[self._lo[n]]

    def set_path(self, root: int, bits: list[tuple[int, bool]],
                 value_leaf: int) -> int:
        var_a = self._var

        def rec(n: int, i: int) -> int:
            if i == len(bits):
                return value_leaf
            lvl, bit = bits[i]
            nl = var_a[n]
            if nl == lvl:
                lo, hi = self._lo[n], self._hi[n]
            elif nl > lvl:  # variable absent: both children are n itself
                lo, hi = n, n
            else:
                raise ValueError(
                    "set_path bits must cover all levels above the map's leaves")
            if bit:
                return self.mk(lvl, lo, rec(hi, i + 1))
            return self.mk(lvl, rec(lo, i + 1), hi)

        return rec(root, 0)

    def get_path(self, root: int, bits: dict[int, bool]) -> Any:
        var_a = self._var
        n = root
        while var_a[n] != LEAF_LEVEL:
            n = self._hi[n] if bits.get(var_a[n], False) else self._lo[n]
        return self._leaf_values[self._lo[n]]

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------

    def leaves(self, root: int) -> list[Any]:
        """Distinct leaf values reachable from ``root``."""
        var_a = self._var
        lo_a = self._lo
        np = numpy_or_none()
        if np is not None:
            ids = self._reachable(root)
            var = np.frombuffer(var_a, dtype=np.int32)
            return [self._leaf_values[lo_a[int(n)]]
                    for n in ids[var[ids] == LEAF_LEVEL]]
        return [self._leaf_values[lo_a[n]] for n in self._reachable_py(root)
                if var_a[n] == LEAF_LEVEL]

    def sat_count(self, root: int, num_vars: int) -> int:
        return self.sat_count_from(root, 0, num_vars)

    def sat_count_from(self, root: int, lvl: int, num_vars: int) -> int:
        """Assignments over variables ``lvl..num_vars-1`` reaching a truthy
        leaf.  Vectorised bottom-up over the reachable sub-DAG when numpy is
        available (ascending ids are a topological order); pure-Python
        otherwise, and always when counts could overflow int64."""
        var_a = self._var
        top = var_a[root]
        start = num_vars if top == LEAF_LEVEL else top
        if start < lvl:
            raise ValueError("diagram tests variables above the requested range")
        # Counts depend only on the (immutable) sub-DAG, so they are cached
        # across calls — ``leaf_groups`` re-counts the same domain regions
        # for every map it is asked about.
        cache = self._satcount_cache
        count = cache.get((root, num_vars))
        if count is None:
            # Small sub-DAGs (the common leaf_groups case) are counted with
            # a plain dict sweep; large ones use the vectorised per-level
            # pass.
            ids = self._reachable_py_capped(root, _NP_REACHABLE_CUTOFF)
            np = numpy_or_none()
            if ids is None and np is not None and num_vars < 62:
                count = self._sat_count_np(np, root, num_vars)
            else:
                if ids is None:
                    ids = self._reachable_py(root)
                count = self._sat_count_py(ids, root, num_vars)
            cache[(root, num_vars)] = count
        return count << (start - lvl)

    def _sat_count_np(self, np, root: int, num_vars: int) -> int:
        """Counts over variables strictly below each node's own level,
        computed level-by-level: children sit at strictly higher levels than
        their parents, so sweeping levels bottom-up resolves every child
        dependency with one vectorised shift-and-add per level."""
        ids = np.asarray(self._reachable(root), dtype=np.int64)
        var = np.frombuffer(self._var, dtype=np.int32)[ids].astype(np.int64)
        lo = np.frombuffer(self._lo, dtype=np.int32)[ids]
        hi = np.frombuffer(self._hi, dtype=np.int32)[ids]
        # Effective level: leaves count from num_vars.
        eff = np.where(var == LEAF_LEVEL, num_vars, var)
        # Dense renumbering of the sub-DAG (ids ascending -> topological).
        slot = np.full(int(ids[-1]) + 1, -1, dtype=np.int64)
        slot[ids] = np.arange(ids.size)
        counts = np.zeros(ids.size, dtype=np.int64)
        is_leaf = var == LEAF_LEVEL
        truthy = [bool(self._leaf_values[int(r)]) for r in lo[is_leaf]]
        counts[is_leaf] = np.array(truthy, dtype=np.int64)
        internal = np.nonzero(~is_leaf)[0]
        if internal.size:
            lo_slot = slot[lo[internal]]
            hi_slot = slot[hi[internal]]
            lvl = var[internal]
            lo_skip = eff[lo_slot] - (lvl + 1)
            hi_skip = eff[hi_slot] - (lvl + 1)
            for level in np.unique(lvl)[::-1]:
                sel = np.nonzero(lvl == level)[0]
                counts[internal[sel]] = (
                    np.left_shift(counts[lo_slot[sel]], lo_skip[sel])
                    + np.left_shift(counts[hi_slot[sel]], hi_skip[sel]))
        return int(counts[slot[root]])

    def _sat_count_py(self, ids: list[int], root: int, num_vars: int) -> int:
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        leaf_values = self._leaf_values
        counts: dict[int, int] = {}
        for n in ids:
            v = var_a[n]
            if v == LEAF_LEVEL:
                counts[n] = 1 if leaf_values[lo_a[n]] else 0
            else:
                lo, hi = lo_a[n], hi_a[n]
                lo_eff = num_vars if var_a[lo] == LEAF_LEVEL else var_a[lo]
                hi_eff = num_vars if var_a[hi] == LEAF_LEVEL else var_a[hi]
                counts[n] = (counts[lo] << (lo_eff - v - 1)) + \
                            (counts[hi] << (hi_eff - v - 1))
        return counts[root]

    def leaf_groups(self, root: int, num_vars: int,
                    domain: int | None = None) -> dict[Any, int]:
        """Each distinct leaf value with the number of (valid) keys reaching
        it — the paper's dynamically discovered failure-equivalence classes."""
        if domain is None:
            domain = self.true
        var_a = self._var
        lo_a = self._lo
        leaf_values = self._leaf_values
        false = self.false
        # The (map node, domain node) product memo is shared across calls:
        # an analysis reports every network node's map against one domain,
        # and converged maps share most of their structure.  Entries are
        # never mutated after insertion, so cross-call reuse is safe.
        memo = self._leaf_groups_memo.setdefault(num_vars, {})

        def top(n: int, d: int) -> int:
            t = min(var_a[n], var_a[d])
            return num_vars if t == LEAF_LEVEL else t

        def rec(n: int, d: int) -> dict[Any, int]:
            if d == false:
                return {}
            key = (n << _KEY_SHIFT) | d
            cached = memo.get(key)
            if cached is not None:
                return cached
            if var_a[n] == LEAF_LEVEL:
                cnt = self.sat_count_from(d, top(n, d), num_vars)
                result = {leaf_values[lo_a[n]]: cnt} if cnt else {}
            else:
                lvl = top(n, d)
                n0, n1 = self._cof(n, lvl)
                d0, d1 = self._cof(d, lvl)
                result = {}
                for nn, dd in ((n0, d0), (n1, d1)):
                    sub = rec(nn, dd)
                    scale = top(nn, dd) - (lvl + 1)
                    for value, cnt in sub.items():
                        result[value] = result.get(value, 0) + (cnt << scale)
            memo[key] = result
            return result

        base = rec(root, domain)
        scale = top(root, domain)
        return {value: cnt << scale for value, cnt in base.items()}

    def any_sat(self, root: int, num_vars: int) -> dict[int, bool] | None:
        if root == self.false:
            return None
        var_a = self._var
        assignment: dict[int, bool] = {}
        n = root
        while var_a[n] != LEAF_LEVEL:
            lvl = var_a[n]
            if self._lo[n] != self.false:
                assignment[lvl] = False
                n = self._lo[n]
            else:
                assignment[lvl] = True
                n = self._hi[n]
        if not self._leaf_values[self._lo[n]]:
            return None
        for lvl in range(num_vars):
            assignment.setdefault(lvl, False)
        return assignment

    def iter_paths(self, root: int, num_vars: int
                   ) -> Iterator[tuple[dict[int, bool], Any]]:
        var_a = self._var
        path: dict[int, bool] = {}

        def rec(n: int) -> Iterator[tuple[dict[int, bool], Any]]:
            if var_a[n] == LEAF_LEVEL:
                yield dict(path), self._leaf_values[self._lo[n]]
                return
            lvl = var_a[n]
            path[lvl] = False
            yield from rec(self._lo[n])
            path[lvl] = True
            yield from rec(self._hi[n])
            del path[lvl]

        yield from rec(root)

    # ------------------------------------------------------------------
    # Snapshots (FrozenMap transport)
    # ------------------------------------------------------------------

    def snapshot(self, root: int) -> tuple[bytes, list[Any]]:
        """Canonical flat snapshot of the sub-DAG rooted at ``root``.

        Nodes are renumbered in DFS preorder (lo before hi, root = 0) into
        one ``array('i')`` of ``(var, lo, hi)`` triples; leaves store ``-1``
        in var and an index into the returned leaf list.  Equal diagrams —
        across engines and across processes — produce byte-identical blobs,
        so :class:`~repro.eval.maps.FrozenMap` equality stays structural.
        """
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        leaf_values = self._leaf_values
        out = array("i")
        leaves: list[Any] = []
        renum: dict[int, int] = {}

        def rec(n: int) -> int:
            new = renum.get(n)
            if new is not None:
                return new
            new = len(renum)
            renum[n] = new
            base = len(out)
            out.extend((0, 0, 0))  # placeholder triple at slot `new`
            if var_a[n] == LEAF_LEVEL:
                out[base] = -1
                out[base + 1] = len(leaves)
                out[base + 2] = -1
                leaves.append(leaf_values[lo_a[n]])
            else:
                out[base] = var_a[n]
                out[base + 1] = rec(lo_a[n])
                out[base + 2] = rec(hi_a[n])
            return new

        rec(root)
        return snapshot_bytes(out), leaves

    # ------------------------------------------------------------------
    # Cache management and instrumentation
    # ------------------------------------------------------------------

    def register_clear_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` whenever :meth:`clear_caches` drops the memo tables
        (used by owners of caches derived from this manager's nodes)."""
        self._clear_hooks.append(hook)

    def clear_caches(self) -> None:
        """Drop operation memo tables and their load counters.  Unique and
        leaf tables are untouched, so hash-consed node identity survives."""
        self._init_op_caches()
        self._satcount_cache.clear()
        self._leaf_groups_memo.clear()
        for hook in self._clear_hooks:
            hook()

    def op_cache_size(self) -> int:
        """Live entries across the operation memo tables (load counters are
        reset by :meth:`clear_caches`, so gauges never report stale sizes)."""
        return self._not_n + self._and_n + self._xor_n + self._ite_n

    def op_cache_capacity(self) -> int:
        """Total slots allocated across the operation memo tables."""
        return self._not_cap + self._and_cap + self._xor_cap + self._ite_cap

    def stats(self) -> dict[str, int]:
        return {
            "nodes": len(self._var),
            "unique_entries": self._unique_n,
            "unique_capacity": self._unique_cap,
            "leaves": len(self._leaf_values),
            "op_cache_entries": self.op_cache_size(),
            "op_cache_capacity": self.op_cache_capacity(),
            "op_cache_hits": self.op_hits,
            "op_cache_misses": self.op_misses,
            "apply_cache_hits": self.apply_hits,
            "apply_cache_misses": self.apply_misses,
        }

    # ------------------------------------------------------------------
    # Kernel telemetry (NV_TELEMETRY; see repro.telemetry)
    # ------------------------------------------------------------------

    def probe_length_counts(self) -> dict[str, dict[int, int]]:
        """Exact probe-length distributions (``length -> entries``) of the
        unique table and every op cache, recomputed by scanning the tables.

        Linear probing with stride 1 and no deletions means an entry at
        slot ``s`` whose key hashes to home slot ``h`` is found after
        ``((s - h) mod cap) + 1`` probes — so the distribution is
        recoverable from the table alone, with zero hot-path bookkeeping.
        The home-slot computations below must mirror the probe sites
        (``mk``/``bnot``/``band``/``bxor``/``bite``) exactly;
        ``tests/bdd/test_telemetry.py`` cross-checks them against a
        brute-force re-probe of every stored key.
        """
        counts: dict[int, int] = {}
        table = self._unique
        cap = self._unique_cap
        mask = cap - 1
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        for s in range(cap):
            n = table[s]
            if n < 0:
                continue
            h = (lo_a[n] * 461845907 + hi_a[n] * 433494437 + var_a[n]) & mask
            d = ((s - h) & mask) + 1
            counts[d] = counts.get(d, 0) + 1
        return {
            "unique": counts,
            "op_not": _probe_counts_single(self._not_keys, self._not_cap),
            "op_and": _probe_counts_packed(self._and_keys, self._and_cap),
            "op_xor": _probe_counts_packed(self._xor_keys, self._xor_cap),
            "op_ite": _probe_counts_ite(self._ite_keys1, self._ite_keys2,
                                        self._ite_cap),
        }

    def telemetry(self) -> tuple[dict[str, int], dict[str, Any]]:
        """``(counters, histograms)`` for :func:`repro.telemetry.flush_manager`:
        rehash/clear event counts plus log2 probe-length histograms."""
        from .. import telemetry as _telemetry

        counters = {
            "unique_rehashes": self.unique_rehashes,
            "op_rehashes": self.op_rehashes,
            "op_cache_clears": self.op_cache_clears,
        }
        hists = {
            f"{name}_probe_len": _telemetry.histogram_from_counts(c)
            for name, c in self.probe_length_counts().items() if c
        }
        return counters, hists


def _probe_counts_single(keys, cap: int) -> dict[int, int]:
    """Probe-length counts of a single-int-key op table (home slot
    ``key * _MULT_A & mask`` — the ``bnot`` probe site)."""
    mask = cap - 1
    counts: dict[int, int] = {}
    for s in range(cap):
        k = keys[s]
        if k < 0:
            continue
        h = k * _MULT_A & mask
        d = ((s - h) & mask) + 1
        counts[d] = counts.get(d, 0) + 1
    return counts


def _probe_counts_packed(keys, cap: int) -> dict[int, int]:
    """Probe-length counts of a packed-pair op table (home slot
    ``(a * _MULT_A + b * _MULT_B) & mask`` — the ``band``/``bxor`` sites)."""
    mask = cap - 1
    counts: dict[int, int] = {}
    for s in range(cap):
        k = keys[s]
        if k < 0:
            continue
        h = ((k >> _KEY_SHIFT) * _MULT_A + (k & _KEY_MASK) * _MULT_B) & mask
        d = ((s - h) & mask) + 1
        counts[d] = counts.get(d, 0) + 1
    return counts


def _probe_counts_ite(keys1, keys2, cap: int) -> dict[int, int]:
    """Probe-length counts of the three-operand ite table (home slot
    ``(c * _MULT_A + t * _MULT_B + e * _MULT_C) & mask``)."""
    mask = cap - 1
    counts: dict[int, int] = {}
    for s in range(cap):
        k1 = keys1[s]
        if k1 < 0:
            continue
        h = ((k1 >> _KEY_SHIFT) * _MULT_A + (k1 & _KEY_MASK) * _MULT_B
             + keys2[s] * _MULT_C) & mask
        d = ((s - h) & mask) + 1
        counts[d] = counts.get(d, 0) + 1
    return counts


def _rehash(keys, vals, cap: int, key_typecode: str):
    """Double an open-addressed key/value table (single-key variant).

    ``'i'`` tables key on one node id, ``'q'`` tables on a packed pair —
    the hash must match the probe sites exactly, or lookups walk the wrong
    chain and silently miss."""
    new_cap = cap * 2
    mask = new_cap - 1
    new_keys = array(key_typecode, [-1]) * new_cap
    new_vals = array("i", [0]) * new_cap
    packed = key_typecode == "q"
    for i in range(cap):
        k = keys[i]
        if k < 0:
            continue
        if packed:
            h = ((k >> _KEY_SHIFT) * _MULT_A + (k & _KEY_MASK) * _MULT_B) & mask
        else:
            h = k * _MULT_A & mask
        while new_keys[h] >= 0:
            h = (h + 1) & mask
        new_keys[h] = k
        new_vals[h] = vals[i]
    return new_keys, new_vals, new_cap
