"""Arena-backed BDD/MTBDD manager: flat int arrays, open-addressed tables.

This is the structure-of-arrays rewrite of :class:`repro.bdd.manager.BddManager`
(the NV §5.1 hash-consed diagram semantics are the unchanged contract; the
object engine remains the executable spec and the two are cross-checked by
``tests/bdd/test_arena_equivalence.py``).  Differences are purely
representational:

* A node is an index into three parallel ``array('i')`` columns ``var``,
  ``lo``, ``hi``.  Internal nodes store the tested level and two child ids;
  leaves store ``LEAF_LEVEL`` in ``var``, a packed reference into the leaf
  value list in ``lo`` and ``-1`` in ``hi``.  Contiguous int32 storage is
  cache-friendly (node ids are dense and children always precede parents)
  and snapshots of a diagram are two ``bytes`` blobs plus a leaf list.
* The unique table and the per-operation memo caches are open-addressed
  linear-probe int arrays with power-of-two capacity, multiplicative
  hashing and amortised rehash on load factor — no Python dicts, no tuple
  keys, no per-entry allocation on the hot path.
* The ``apply1``/``apply2``/``map_ite`` and boolean-op inner loops are
  closure-recursive over locals bound to the arena columns: per node-pair
  they execute a handful of index/compare bytecodes instead of the object
  engine's frame tuples and explicit result stacks.
* Bulk analyses (reachability marking, ``sat_count``, ``leaves``,
  ``node_count``) run vectorised over ``numpy`` views of the arena when
  numpy is importable, with a pure-``array`` fallback so ``dependencies =
  []`` installs keep working (force the fallback with ``NV_BDD_NUMPY=0``).

Select the engine with ``NV_BDD_ENGINE=object|arena`` (see
:func:`repro.bdd.make_manager`).
"""

from __future__ import annotations

import itertools
import os
from array import array
from typing import Any, Callable, Iterator

from .. import metrics, obs
from .manager import GROWTH_SAMPLE_INTERVAL, LEAF_LEVEL, snapshot_bytes

__all__ = ["ArenaBddManager", "LEAF_LEVEL", "numpy_or_none"]

_manager_ids = itertools.count(1)

#: Node ids are packed two (or three) to an int key; 30 bits each.
_KEY_SHIFT = 30
_KEY_MASK = (1 << _KEY_SHIFT) - 1

#: Multipliers for the open-addressed tables.  Two constraints: they must
#: stay below 2**30 so ``id * mult`` keeps both operands on CPython's
#: single-digit fast multiply path, and their *low* 20+ bits must be well
#: mixed, because the slot index is the masked low bits of the sum — a
#: multiplier congruent to a small constant mod the capacity (e.g. the
#: classic 12582917, which is 5 mod 2**20) degenerates to a tiny stride on
#: dense sequential node ids and clusters the linear probes.
_MULT_A = 0x1B873593
_MULT_B = 0x19D699A5
_MULT_C = 741457

#: Smallest table capacities (power of two).  Managers are created per
#: analysis context, so the empty footprint stays a few KiB.
_UNIQUE_INIT_CAP = 1 << 10
_CACHE_INIT_CAP = 1 << 8

#: Sub-DAGs at or below this size use the Python reachability walk even when
#: numpy is present: the vectorised marking pass costs O(arena), which dwarfs
#: a small traversal (``leaf_groups`` issues many tiny ``sat_count`` calls).
_NP_REACHABLE_CUTOFF = 8192

#: Default for ``NV_BDD_FRONTIER_MIN``: operand diagrams below this node
#: count run the scalar kernels — a frontier pass costs a few dozen numpy
#: calls per level, which a tiny diagram cannot amortise (fig14's per-route
#: maps are this case).  Set ``NV_BDD_FRONTIER_MIN=0`` to force the
#: vectorised path for every op (the equivalence tests do).
_FRONTIER_MIN_DEFAULT = 512

#: Second dispatch statistic: the *average level width* (reachable nodes
#: per decision level) a root must reach before a frontier pass is worth
#: it.  A pass pays its numpy cost per level, so deep-and-thin diagrams
#: (fig13b's ~26-level fault routes average well under 10² nodes/level)
#: lose to the scalar kernel even at thousands of total nodes, while wide
#: shallow diagrams win far below that.  ``NV_BDD_FRONTIER_WIDTH=0``
#: disables the width test (node count alone decides).
_FRONTIER_WIDTH_DEFAULT = 256

#: Arena size above which a unique-table rehash uses the vectorised
#: claim-round rebuild instead of the scalar reinsertion loop.
_NP_REHASH_CUTOFF = 4096

#: Per-level node batches below this size insert through the scalar
#: :meth:`mk` loop instead of ``_unique_insert_batch`` — the vectorised
#: probe rounds cost ~0.2 ms regardless of width.
_MK_SCALAR_MAX = 128

#: Frontier task keys pack a group index (one per distinct ``(fn, memo)``
#: in a batched call) into the top int64 bits above the 60 bits of packed
#: node-pair key, so one pass shares level synchronisation across groups
#: while each group keeps its own memo/dedup domain.  3 bits of group keep
#: every key a positive int64.
_GROUP_SHIFT = 60
_GROUP_KEY_MASK = (1 << _GROUP_SHIFT) - 1
_GROUP_MAX = 8

#: map_ite child references pack (task family, task index): family 0 is the
#: pred×map product, families 1/2 the fn_true/fn_false apply1 branches.
_REF_SHIFT = 50
_REF_MASK = (1 << _REF_SHIFT) - 1


def numpy_or_none():
    """The ``numpy`` module when importable and not disabled via
    ``NV_BDD_NUMPY=0``, else ``None`` (pure-``array`` fallback paths)."""
    if os.environ.get("NV_BDD_NUMPY", "").strip() == "0":
        return None
    try:
        import numpy
    except ImportError:  # optional dependency: dependencies = [] installs
        return None
    return numpy


def _live_gauges(m: "ArenaBddManager") -> dict[str, float]:
    """Heartbeat gauges: structural sizes plus the arena-specific capacity
    and load-factor signals the growth samples also carry."""
    return {
        "bdd.nodes": len(m._var),
        "bdd.unique_entries": m._unique_n,
        "bdd.unique_capacity": m._unique_cap,
        "bdd.unique_load": m._unique_n / m._unique_cap,
        "bdd.leaves": len(m._leaf_values),
        "bdd.op_cache_entries": m.op_cache_size(),
        "bdd.op_cache_capacity": m.op_cache_capacity(),
        "bdd.op_ops": m.op_hits + m.op_misses,
        "bdd.apply_ops": m.apply_hits + m.apply_misses,
    }


class _TaskTable:
    """Growable parallel numpy columns for one frontier-pass task family.

    A *task* is one ``(a, b)`` operand pair discovered during expansion:
    ``a``/``b`` are the operand node ids, ``g`` the batch group, ``lo``/``hi``
    the packed child-task references filled in when the task's level is
    expanded, and ``res`` the result node id (-1 until rebuilt).  The table
    is local to one pass — nothing here survives a kernel call."""

    __slots__ = ("_np", "a", "b", "g", "lo", "hi", "res", "n", "_cap")

    def __init__(self, np) -> None:
        self._np = np
        self._cap = 256
        self.a = np.empty(self._cap, np.int32)
        self.b = np.empty(self._cap, np.int32)
        self.g = np.empty(self._cap, np.int8)
        self.lo = np.empty(self._cap, np.int64)
        self.hi = np.empty(self._cap, np.int64)
        self.res = np.empty(self._cap, np.int64)
        self.n = 0

    def grow_to(self, need: int) -> None:
        if need <= self._cap:
            return
        cap = self._cap
        while cap < need:
            cap *= 2
        np = self._np
        for name in ("a", "b", "g", "lo", "hi", "res"):
            old = getattr(self, name)
            new = np.empty(cap, old.dtype)
            new[:self.n] = old[:self.n]
            setattr(self, name, new)
        self._cap = cap


class ArenaBddManager:
    """Drop-in replacement for :class:`~repro.bdd.manager.BddManager` over a
    flat integer arena (see module docstring).  Public API, node-id
    semantics (hash-consing, canonical reduction, leaf sharing) and
    instrumentation counters match the object engine exactly."""

    def __init__(self, op_cache_limit: int = 1 << 20) -> None:
        # Node arena: parallel int32 columns.
        self._var = array("i")
        self._lo = array("i")
        self._hi = array("i")
        # Leaf store: values are arbitrary hashable Python objects, so they
        # live outside the int arena; _lo[n] is the index in here.
        self._leaf_values: list[Any] = []
        self._leaf_table: dict[Any, int] = {}
        # Open-addressed unique table: slots hold node ids (-1 = empty);
        # keys are compared against the arena columns, so nothing besides
        # the id is stored per entry.
        self._unique_cap = _UNIQUE_INIT_CAP
        self._unique = array("i", [-1]) * self._unique_cap
        self._unique_n = 0
        # Per-op memo caches: parallel key/value int arrays (-1 = empty).
        # band/bxor pack (a, b) into one int64 key; bite splits (c, t, e)
        # across an int64 and an int32 column; bnot keys on the operand.
        self.op_cache_limit = op_cache_limit
        self._init_op_caches()
        # Analysis caches (plain dicts, cold path): sat counts per
        # (root, num_vars) and the cross-call leaf_groups product memos.
        self._satcount_cache: dict[tuple[int, int], int] = {}
        self._leaf_groups_memo: dict[int, dict[int, dict[Any, int]]] = {}
        # Callbacks run by clear_caches so owners of derived caches (e.g.
        # MapContext's frozen-snapshot cache) can drop them in lockstep.
        self._clear_hooks: list[Callable[[], None]] = []
        # Instrumentation (same counters as the object engine).
        self.op_hits = 0
        self.op_misses = 0
        self.apply_hits = 0
        self.apply_misses = 0
        # Table-health telemetry (flushed by repro.telemetry when
        # NV_TELEMETRY is on): rehash/clear events are rare, so these plain
        # increments are free; probe-length histograms are *recomputed* by
        # scanning the tables on demand, never recorded per lookup.
        self.unique_rehashes = 0
        self.op_rehashes = 0
        self.op_cache_clears = 0
        # Level-synchronous frontier kernels (apply1/apply2/map_ite).  The
        # numpy handle is captured once so an engine's representation never
        # flips mid-manager; NV_BDD_NUMPY=0 keeps the scalar kernels as the
        # executable spec.  The shadow columns are incrementally synced
        # int32 copies of the arena columns (array('i') cannot be viewed
        # persistently without blocking append), and the size-class cache
        # remembers which roots are worth a vectorised pass.
        self._np = numpy_or_none()
        try:
            self._frontier_min = int(
                os.environ.get("NV_BDD_FRONTIER_MIN", "").strip()
                or _FRONTIER_MIN_DEFAULT)
        except ValueError:
            self._frontier_min = _FRONTIER_MIN_DEFAULT
        try:
            self._frontier_width = int(
                os.environ.get("NV_BDD_FRONTIER_WIDTH", "").strip()
                or _FRONTIER_WIDTH_DEFAULT)
        except ValueError:
            self._frontier_width = _FRONTIER_WIDTH_DEFAULT
        self._sh_var = None
        self._sh_lo = None
        self._sh_hi = None
        self._sh_n = 0
        self._size_class: dict[int, bool] = {}
        self.frontier_passes = 0
        self.frontier_tasks = 0
        self.frontier_levels = 0
        self.frontier_scalar_ops = 0
        self._frontier_width_counts: dict[int, int] = {}
        self._batch_width_counts: dict[int, int] = {}
        self._next_growth_sample = GROWTH_SAMPLE_INTERVAL
        metrics.register_weak_provider(
            f"bdd.arena.{next(_manager_ids)}", self, _live_gauges)
        self.false = self.leaf(False)
        self.true = self.leaf(True)

    def _init_op_caches(self) -> None:
        cap = _CACHE_INIT_CAP
        self._not_keys = array("i", [-1]) * cap
        self._not_vals = array("i", [0]) * cap
        self._not_cap, self._not_n = cap, 0
        self._and_keys = array("q", [-1]) * cap
        self._and_vals = array("i", [0]) * cap
        self._and_cap, self._and_n = cap, 0
        self._xor_keys = array("q", [-1]) * cap
        self._xor_vals = array("i", [0]) * cap
        self._xor_cap, self._xor_n = cap, 0
        self._ite_keys1 = array("q", [-1]) * cap
        self._ite_keys2 = array("i", [0]) * cap
        self._ite_vals = array("i", [0]) * cap
        self._ite_cap, self._ite_n = cap, 0

    # ------------------------------------------------------------------
    # Growth sampling (obs timeline)
    # ------------------------------------------------------------------

    def _growth_sample(self) -> None:
        self._next_growth_sample = len(self._var) + GROWTH_SAMPLE_INTERVAL
        if obs.is_enabled():
            obs.event("bdd.growth", nodes=len(self._var),
                      unique_entries=self._unique_n,
                      unique_capacity=self._unique_cap,
                      unique_load=round(self._unique_n / self._unique_cap, 3),
                      leaves=len(self._leaf_values),
                      op_cache_entries=self.op_cache_size(),
                      op_cache_capacity=self.op_cache_capacity(),
                      op_cache_hits=self.op_hits,
                      op_cache_misses=self.op_misses)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def leaf(self, value: Any) -> int:
        """Return the hash-consed leaf node carrying ``value``."""
        try:
            node = self._leaf_table.get(value)
        except TypeError as exc:  # unhashable value
            raise TypeError(
                f"MTBDD leaf values must be hashable, got {value!r}") from exc
        if node is not None:
            return node
        node = len(self._var)
        self._var.append(LEAF_LEVEL)
        self._lo.append(len(self._leaf_values))
        self._hi.append(-1)
        self._leaf_values.append(value)
        self._leaf_table[value] = node
        return node

    def mk(self, level: int, lo: int, hi: int) -> int:
        """Return the (reduced, hash-consed) node testing ``level``."""
        if lo == hi:
            return lo
        var_a = self._var
        lo_a = self._lo
        hi_a = self._hi
        table = self._unique
        mask = self._unique_cap - 1
        h = (lo * 461845907 + hi * 433494437 + level) & mask
        while True:
            n = table[h]
            if n < 0:
                break
            if lo_a[n] == lo and hi_a[n] == hi and var_a[n] == level:
                return n
            h = (h + 1) & mask
        node = len(var_a)
        var_a.append(level)
        lo_a.append(lo)
        hi_a.append(hi)
        table[h] = node
        self._unique_n += 1
        if 3 * self._unique_n > 2 * self._unique_cap:
            self._grow_unique()
        if node >= self._next_growth_sample:
            self._growth_sample()
        return node

    def _grow_unique(self) -> None:
        self.unique_rehashes += 1
        cap = self._unique_cap * 2
        np = self._np
        if np is not None and len(self._var) > _NP_REHASH_CUTOFF:
            self._grow_unique_np(np, cap)
            return
        table = array("i", [-1]) * cap
        mask = cap - 1
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        for n in range(len(var_a)):
            if var_a[n] == LEAF_LEVEL:
                continue
            h = (lo_a[n] * 461845907 + hi_a[n] * 433494437 + var_a[n]) & mask
            while table[h] >= 0:
                h = (h + 1) & mask
            table[h] = n
        self._unique = table
        self._unique_cap = cap

    def _grow_unique_np(self, np, cap: int) -> None:
        """Vectorised rehash: every internal node re-inserts via parallel
        claim rounds — gather each pending node's slot, winners (first
        occurrence per empty slot, ``np.unique``) claim it, losers advance
        one step along their probe chain.  All nodes are distinct, so no
        key comparison is needed; the linear-probing reachability invariant
        holds because a node only ever steps past slots that are occupied
        by the time the round ends."""
        self._sync_shadow()
        n = len(self._var)
        var_s = self._sh_var[:n]
        ids = np.nonzero(var_s != LEAF_LEVEL)[0].astype(np.int64)
        mask = np.int64(cap - 1)
        h = (self._sh_lo[ids].astype(np.int64) * 461845907
             + self._sh_hi[ids].astype(np.int64) * 433494437
             + var_s[ids]) & mask
        table = np.full(cap, -1, np.int32)
        done = np.zeros(ids.size, bool)
        pending = np.arange(ids.size)
        one = np.int64(1)
        while pending.size:
            slots = h[pending]
            empty = table[slots] < 0
            em = pending[empty]
            if em.size:
                uq, first = np.unique(slots[empty], return_index=True)
                win = em[first]
                table[uq] = ids[win].astype(np.int32)
                done[win] = True
            pending = pending[~done[pending]]
            h[pending] = (h[pending] + one) & mask
        out = array("i")
        out.frombytes(table.tobytes())
        self._unique = out
        self._unique_cap = cap

    # ------------------------------------------------------------------
    # Frontier-kernel support: shadow columns and batched insertion
    # ------------------------------------------------------------------

    def _shadow_ensure(self, need: int) -> None:
        np = self._np
        sh = self._sh_var
        if sh is not None and sh.size >= need:
            return
        cap = 1024 if sh is None else sh.size
        while cap < need:
            cap *= 2
        for name in ("_sh_var", "_sh_lo", "_sh_hi"):
            old = getattr(self, name)
            new = np.empty(cap, np.int32)
            if old is not None and self._sh_n:
                new[:self._sh_n] = old[:self._sh_n]
            setattr(self, name, new)

    def _sync_shadow(self) -> None:
        """Copy the arena tail ``[synced, len)`` into the numpy shadow
        columns.  The arena is append-only, so the synced prefix can never
        go stale; the ``frombuffer`` views are transient (assignment
        copies), so ``array('i').append`` is never blocked by an export."""
        np = self._np
        n = len(self._var)
        self._shadow_ensure(n)
        s = self._sh_n
        if s < n:
            cnt = n - s
            off = 4 * s
            self._sh_var[s:n] = np.frombuffer(self._var, dtype=np.int32,
                                              offset=off, count=cnt)
            self._sh_lo[s:n] = np.frombuffer(self._lo, dtype=np.int32,
                                             offset=off, count=cnt)
            self._sh_hi[s:n] = np.frombuffer(self._hi, dtype=np.int32,
                                             offset=off, count=cnt)
            self._sh_n = n

    def _append_nodes(self, np, lvl: int, lo_ids, hi_ids):
        """Append a batch of internal nodes, keeping arena columns and
        shadow columns in lockstep; returns the new ids (int64)."""
        k = int(lo_ids.size)
        base = len(self._var)
        var32 = np.full(k, lvl, np.int32)
        lo32 = lo_ids.astype(np.int32)
        hi32 = hi_ids.astype(np.int32)
        self._var.frombytes(var32.tobytes())
        self._lo.frombytes(lo32.tobytes())
        self._hi.frombytes(hi32.tobytes())
        self._shadow_ensure(base + k)
        self._sh_var[base:base + k] = var32
        self._sh_lo[base:base + k] = lo32
        self._sh_hi[base:base + k] = hi32
        self._sh_n = base + k
        if base + k - 1 >= self._next_growth_sample:
            self._growth_sample()
        return np.arange(base, base + k, dtype=np.int64)

    def _unique_insert_batch(self, np, lvl: int, u0, u1):
        """Find-or-insert a batch of *distinct* ``(lo, hi)`` pairs at
        ``lvl``; returns node ids aligned with the batch.

        The table is pre-grown for the worst case so its storage stays
        stable across the claim rounds, letting one writable
        ``frombuffer`` view service every batched slot write.  Each round:
        gather the pending pairs' slots; occupied slots triple-compare
        against the shadow columns (match resolves the pair); empty slots
        are claimed by the first pair per slot (``np.unique``) which
        appends its node, while race losers simply continue the probe
        chain — safe because the batch pairs are pairwise distinct."""
        k = int(u0.size)
        while 3 * (self._unique_n + k) > 2 * self._unique_cap:
            self._grow_unique()
        self._sync_shadow()
        ut = np.frombuffer(self._unique, dtype=np.int32)
        mask = np.int64(self._unique_cap - 1)
        h = (u0 * 461845907 + u1 * 433494437 + lvl) & mask
        out = np.full(k, -1, np.int64)
        pending = np.arange(k)
        one = np.int64(1)
        while pending.size:
            slots = h[pending]
            occ = ut[slots].astype(np.int64)
            empty = occ < 0
            oc = pending[~empty]
            if oc.size:
                cand = occ[~empty]
                match = ((self._sh_lo[cand] == u0[oc])
                         & (self._sh_hi[cand] == u1[oc])
                         & (self._sh_var[cand] == lvl))
                out[oc[match]] = cand[match]
            em = pending[empty]
            if em.size:
                uq, first = np.unique(slots[empty], return_index=True)
                win = em[first]
                ids = self._append_nodes(np, lvl, u0[win], u1[win])
                ut[uq] = ids.astype(np.int32)
                out[win] = ids
                self._unique_n += win.size
            pending = np.nonzero(out < 0)[0]
            h[pending] = (h[pending] + one) & mask
        return out

    def _mk_level_np(self, np, lvl: int, r0, r1):
        """Batched :meth:`mk`: reduce ``r0 == r1`` in place, dedupe the
        remaining pairs with ``np.unique`` over packed keys, insert once.
        Thin batches fall through to the scalar :meth:`mk` loop — the
        vectorised probe's fixed cost only amortises past ~10² nodes."""
        out = np.asarray(r0, dtype=np.int64).copy()
        diff = np.nonzero(r0 != r1)[0]
        if diff.size:
            if diff.size < _MK_SCALAR_MAX:
                mk = self.mk
                out[diff] = [
                    mk(lvl, lo, hi)
                    for lo, hi in zip(out[diff].tolist(),
                                      np.asarray(r1, np.int64)[diff].tolist())]
            else:
                pk = (out[diff] << _KEY_SHIFT) | np.asarray(r1, np.int64)[diff]
                uq, inv = np.unique(pk, return_inverse=True)
                ids = self._unique_insert_batch(
                    np, lvl, uq >> _KEY_SHIFT, uq & np.int64(_KEY_MASK))
                out[diff] = ids[inv]
        return out

    def _frontier_worthy(self, root: int) -> bool:
        """Is ``root`` shaped so that a frontier pass beats the scalar
        kernel?  Two statistics decide: total node count must reach
        ``NV_BDD_FRONTIER_MIN`` *and* average level width must reach
        ``NV_BDD_FRONTIER_WIDTH`` — a pass pays its fixed numpy cost per
        level, so width, not size, is what it amortises against.  A capped
        DFS settles each statistic once per root (the arena is
        append-only, so a root's sub-DAG never changes)."""
        fm = self._frontier_min
        if fm <= 0:
            return True
        big = self._size_class.get(root)
        if big is None:
            big = self._shape_worthy(root, fm, self._frontier_width)
            self._size_class[root] = big
        return big

    def _shape_worthy(self, root: int, fm: int, wm: int) -> bool:
        """One DFS deciding both statistics, cost-capped: stop (worthy) as
        soon as visited nodes cross both the node floor and ``wm ×
        levels-seen`` — a moving bar that only rises, so at most ``max(fm,
        wm × levels) + 1`` nodes are ever touched.  An exhausted DFS has
        the exact count and level set, so small or thin diagrams classify
        exactly."""
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        seen = {root}
        levels: set[int] = set()
        stack = [root]
        push = stack.append
        pop = stack.pop
        add = seen.add
        ladd = levels.add
        while stack:
            n = pop()
            if var_a[n] != LEAF_LEVEL:
                ladd(var_a[n])
                c = lo_a[n]
                if c not in seen:
                    add(c)
                    push(c)
                c = hi_a[n]
                if c not in seen:
                    add(c)
                    push(c)
                if len(seen) >= fm and (
                        wm <= 0 or len(seen) >= wm * len(levels)):
                    return True
        return len(seen) >= fm and (
            wm <= 0 or len(seen) >= wm * len(levels))

    def var(self, level: int) -> int:
        return self.mk(level, self.false, self.true)

    def nvar(self, level: int) -> int:
        return self.mk(level, self.true, self.false)

    # ------------------------------------------------------------------
    # Node inspection
    # ------------------------------------------------------------------

    def is_leaf(self, node: int) -> bool:
        return self._var[node] == LEAF_LEVEL

    def leaf_value(self, node: int) -> Any:
        if self._var[node] != LEAF_LEVEL:
            raise ValueError(f"node {node} is not a leaf")
        return self._leaf_values[self._lo[node]]

    def level(self, node: int) -> int:
        return self._var[node]

    def lo(self, node: int) -> int:
        if self._var[node] == LEAF_LEVEL:
            return -1
        return self._lo[node]

    def hi(self, node: int) -> int:
        return self._hi[node]

    def size(self) -> int:
        return len(self._var)

    def node_count(self, root: int) -> int:
        """Number of distinct nodes (incl. leaves) reachable from ``root``."""
        return len(self._reachable(root))

    # ------------------------------------------------------------------
    # Reachability marking (numpy-vectorised with array fallback)
    # ------------------------------------------------------------------

    def _reachable(self, root: int):
        """Ids of nodes reachable from ``root``, ascending.  Children always
        precede parents in the arena, so ascending id order is a topological
        order of the sub-DAG (leaves first).

        The vectorised marking pass costs O(arena) regardless of the
        sub-DAG, so small diagrams (the common ``leaf_groups`` case) walk a
        capped Python DFS first and only fall through to numpy when the
        sub-DAG turns out to be large.
        """
        np = numpy_or_none()
        if np is None:
            return self._reachable_py(root)
        small = self._reachable_py_capped(root, _NP_REACHABLE_CUTOFF)
        if small is not None:
            return np.array(small, dtype=np.int64)
        var = np.frombuffer(self._var, dtype=np.int32)
        lo = np.frombuffer(self._lo, dtype=np.int32)
        hi = np.frombuffer(self._hi, dtype=np.int32)
        marked = np.zeros(len(self._var), dtype=bool)
        marked[root] = True
        frontier = np.array([root], dtype=np.int64)
        while frontier.size:
            # Only internal nodes have child edges: a leaf's lo column holds
            # a leaf-store index, not a node id, and must not be followed.
            inner = frontier[var[frontier] != LEAF_LEVEL]
            if inner.size == 0:
                break
            kids = np.concatenate((lo[inner], hi[inner])).astype(np.int64)
            kids = kids[~marked[kids]]
            if kids.size == 0:
                break
            marked[kids] = True
            frontier = np.unique(kids)
        return np.nonzero(marked)[0]

    def _reachable_py(self, root: int) -> list[int]:
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        seen = {root}
        stack = [root]
        push = stack.append
        pop = stack.pop
        add = seen.add
        while stack:
            n = pop()
            if var_a[n] != LEAF_LEVEL:
                c = lo_a[n]
                if c not in seen:
                    add(c)
                    push(c)
                c = hi_a[n]
                if c not in seen:
                    add(c)
                    push(c)
        return sorted(seen)

    def _reachable_py_capped(self, root: int, cap: int) -> list[int] | None:
        """Like :meth:`_reachable_py`, but give up (return None) once more
        than ``cap`` nodes are discovered."""
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        seen = {root}
        stack = [root]
        push = stack.append
        pop = stack.pop
        add = seen.add
        while stack:
            n = pop()
            if var_a[n] != LEAF_LEVEL:
                c = lo_a[n]
                if c not in seen:
                    add(c)
                    push(c)
                c = hi_a[n]
                if c not in seen:
                    add(c)
                    push(c)
                if len(seen) > cap:
                    return None
        return sorted(seen)

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------

    def bnot(self, a: int) -> int:
        keys = self._not_keys
        mask = self._not_cap - 1
        h = a * _MULT_A & mask
        while True:
            k = keys[h]
            if k == a:
                self.op_hits += 1
                return self._not_vals[h]
            if k < 0:
                break
            h = (h + 1) & mask
        self.op_misses += 1
        if self._var[a] == LEAF_LEVEL:
            result = self.leaf(not self._leaf_values[self._lo[a]])
        else:
            result = self.mk(self._var[a], self.bnot(self._lo[a]),
                             self.bnot(self._hi[a]))
        self._not_store(a, result)
        return result

    def _not_store(self, key: int, value: int) -> None:
        if self._not_n >= self.op_cache_limit:
            cap = self._not_cap
            self._not_keys = array("i", [-1]) * cap
            self._not_n = 0
            self.op_cache_clears += 1
        elif 3 * self._not_n > 2 * self._not_cap:
            self.op_rehashes += 1
            self._not_keys, self._not_vals, self._not_cap = _rehash(
                self._not_keys, self._not_vals, self._not_cap, "i")
        keys = self._not_keys
        mask = self._not_cap - 1
        h = key * _MULT_A & mask
        while keys[h] >= 0:
            if keys[h] == key:
                self._not_vals[h] = value
                return
            h = (h + 1) & mask
        keys[h] = key
        self._not_vals[h] = value
        self._not_n += 1

    def band(self, a: int, b: int) -> int:
        if a == b:
            return a
        false = self.false
        if a == false or b == false:
            return false
        if a == self.true:
            return b
        if b == self.true:
            return a
        if a > b:
            a, b = b, a
        key = (a << _KEY_SHIFT) | b
        keys = self._and_keys
        mask = self._and_cap - 1
        h = (a * _MULT_A + b * _MULT_B) & mask
        while True:
            k = keys[h]
            if k == key:
                self.op_hits += 1
                return self._and_vals[h]
            if k < 0:
                break
            h = (h + 1) & mask
        self.op_misses += 1
        var_a = self._var
        la, lb = var_a[a], var_a[b]
        if la < lb:
            lvl = la
            r = self.mk(lvl, self.band(self._lo[a], b),
                        self.band(self._hi[a], b))
        elif lb < la:
            lvl = lb
            r = self.mk(lvl, self.band(a, self._lo[b]),
                        self.band(a, self._hi[b]))
        else:
            r = self.mk(la, self.band(self._lo[a], self._lo[b]),
                        self.band(self._hi[a], self._hi[b]))
        self._and_store(key, r)
        return r

    def _and_store(self, key: int, value: int) -> None:
        if self._and_n >= self.op_cache_limit:
            self._and_keys = array("q", [-1]) * self._and_cap
            self._and_n = 0
            self.op_cache_clears += 1
        elif 3 * self._and_n > 2 * self._and_cap:
            self.op_rehashes += 1
            self._and_keys, self._and_vals, self._and_cap = _rehash(
                self._and_keys, self._and_vals, self._and_cap, "q")
        keys = self._and_keys
        mask = self._and_cap - 1
        h = ((key >> _KEY_SHIFT) * _MULT_A + (key & _KEY_MASK) * _MULT_B) & mask
        while keys[h] >= 0:
            if keys[h] == key:
                self._and_vals[h] = value
                return
            h = (h + 1) & mask
        keys[h] = key
        self._and_vals[h] = value
        self._and_n += 1

    def bor(self, a: int, b: int) -> int:
        return self.bnot(self.band(self.bnot(a), self.bnot(b)))

    def bxor(self, a: int, b: int) -> int:
        if a == b:
            return self.false
        if a == self.false:
            return b
        if b == self.false:
            return a
        if a == self.true:
            return self.bnot(b)
        if b == self.true:
            return self.bnot(a)
        if a > b:
            a, b = b, a
        key = (a << _KEY_SHIFT) | b
        keys = self._xor_keys
        mask = self._xor_cap - 1
        h = (a * _MULT_A + b * _MULT_B) & mask
        while True:
            k = keys[h]
            if k == key:
                self.op_hits += 1
                return self._xor_vals[h]
            if k < 0:
                break
            h = (h + 1) & mask
        self.op_misses += 1
        var_a = self._var
        la, lb = var_a[a], var_a[b]
        lvl = la if la < lb else lb
        a0, a1 = (self._lo[a], self._hi[a]) if la == lvl else (a, a)
        b0, b1 = (self._lo[b], self._hi[b]) if lb == lvl else (b, b)
        r = self.mk(lvl, self.bxor(a0, b0), self.bxor(a1, b1))
        self._xor_store(key, r)
        return r

    def _xor_store(self, key: int, value: int) -> None:
        if self._xor_n >= self.op_cache_limit:
            self._xor_keys = array("q", [-1]) * self._xor_cap
            self._xor_n = 0
            self.op_cache_clears += 1
        elif 3 * self._xor_n > 2 * self._xor_cap:
            self.op_rehashes += 1
            self._xor_keys, self._xor_vals, self._xor_cap = _rehash(
                self._xor_keys, self._xor_vals, self._xor_cap, "q")
        keys = self._xor_keys
        mask = self._xor_cap - 1
        h = ((key >> _KEY_SHIFT) * _MULT_A + (key & _KEY_MASK) * _MULT_B) & mask
        while keys[h] >= 0:
            if keys[h] == key:
                self._xor_vals[h] = value
                return
            h = (h + 1) & mask
        keys[h] = key
        self._xor_vals[h] = value
        self._xor_n += 1

    def bimplies(self, a: int, b: int) -> int:
        return self.bor(self.bnot(a), b)

    def biff(self, a: int, b: int) -> int:
        return self.bnot(self.bxor(a, b))

    def bite(self, c: int, t: int, e: int) -> int:
        if c == self.true:
            return t
        if c == self.false:
            return e
        if t == e:
            return t
        key1 = (c << _KEY_SHIFT) | t
        keys1 = self._ite_keys1
        keys2 = self._ite_keys2
        mask = self._ite_cap - 1
        h = (c * _MULT_A + t * _MULT_B + e * _MULT_C) & mask
        while True:
            k = keys1[h]
            if k == key1 and keys2[h] == e:
                self.op_hits += 1
                return self._ite_vals[h]
            if k < 0:
                break
            h = (h + 1) & mask
        self.op_misses += 1
        var_a = self._var
        lvl = min(var_a[c], var_a[t], var_a[e])
        c0, c1 = self._cof(c, lvl)
        t0, t1 = self._cof(t, lvl)
        e0, e1 = self._cof(e, lvl)
        r = self.mk(lvl, self.bite(c0, t0, e0), self.bite(c1, t1, e1))
        self._ite_store(key1, e, r)
        return r

    def _ite_store(self, key1: int, key2: int, value: int) -> None:
        if self._ite_n >= self.op_cache_limit:
            cap = self._ite_cap
            self._ite_keys1 = array("q", [-1]) * cap
            self._ite_keys2 = array("i", [0]) * cap
            self._ite_n = 0
            self.op_cache_clears += 1
        elif 3 * self._ite_n > 2 * self._ite_cap:
            self.op_rehashes += 1
            cap = self._ite_cap * 2
            mask = cap - 1
            k1 = array("q", [-1]) * cap
            k2 = array("i", [0]) * cap
            vals = array("i", [0]) * cap
            old1, old2, oldv = self._ite_keys1, self._ite_keys2, self._ite_vals
            for i in range(self._ite_cap):
                ok = old1[i]
                if ok < 0:
                    continue
                h = ((ok >> _KEY_SHIFT) * _MULT_A
                     + (ok & _KEY_MASK) * _MULT_B + old2[i] * _MULT_C) & mask
                while k1[h] >= 0:
                    h = (h + 1) & mask
                k1[h] = ok
                k2[h] = old2[i]
                vals[h] = oldv[i]
            self._ite_keys1, self._ite_keys2, self._ite_vals = k1, k2, vals
            self._ite_cap = cap
        keys1 = self._ite_keys1
        mask = self._ite_cap - 1
        h = ((key1 >> _KEY_SHIFT) * _MULT_A
             + (key1 & _KEY_MASK) * _MULT_B + key2 * _MULT_C) & mask
        while keys1[h] >= 0:
            if keys1[h] == key1 and self._ite_keys2[h] == key2:
                self._ite_vals[h] = value
                return
            h = (h + 1) & mask
        keys1[h] = key1
        self._ite_keys2[h] = key2
        self._ite_vals[h] = value
        self._ite_n += 1

    def _cof(self, node: int, lvl: int) -> tuple[int, int]:
        if self._var[node] == lvl:
            return self._lo[node], self._hi[node]
        return node, node

    # ------------------------------------------------------------------
    # MTBDD operations (closure-recursive kernels)
    # ------------------------------------------------------------------

    def apply1(self, fn: Callable[[Any], Any], root: int,
               memo: dict[int, int] | None = None) -> int:
        """Map ``fn`` over every leaf of ``root`` (invoked once per distinct
        leaf; ``memo`` is keyed by node id and shareable across calls with
        the same ``fn``)."""
        np = self._np
        if np is not None and self._frontier_worthy(root):
            # apply1 is the degenerate map_ite with pred == true: the seed
            # lands directly in the fn_true branch family, whose memo *is*
            # this memo (same node-id keying as the scalar kernel).
            return self._map_pass(
                np, [(fn, None, {}, {} if memo is None else memo, {},
                      [(self.true, root)])])[0][0]
        self.frontier_scalar_ops += 1
        if memo is None:
            memo = {}
        var_a = self._var
        lo_a = self._lo
        hi_a = self._hi
        leaf_values = self._leaf_values
        memo_get = memo.get
        mk = self.mk
        leaf = self.leaf
        utable = self._unique
        umask = self._unique_cap - 1
        hits = 0
        misses = 0

        # Memo lookups happen *before* recursing, so the number of Python
        # calls is proportional to cache misses, not to visited edges; the
        # unique-table probe is inlined (see mk) so the hot path constructs
        # nodes without a method call.
        def rec(n: int) -> int:
            nonlocal hits, misses, utable, umask
            misses += 1
            if var_a[n] == LEAF_LEVEL:
                r = leaf(fn(leaf_values[lo_a[n]]))
            else:
                c = lo_a[n]
                r0 = memo_get(c)
                if r0 is None:
                    r0 = rec(c)
                else:
                    hits += 1
                c = hi_a[n]
                r1 = memo_get(c)
                if r1 is None:
                    r1 = rec(c)
                else:
                    hits += 1
                if r0 == r1:
                    r = r0
                else:
                    v = var_a[n]
                    h = (r0 * 461845907 + r1 * 433494437 + v) & umask
                    while True:
                        u = utable[h]
                        if u < 0:
                            r = mk(v, r0, r1)
                            if self._unique is not utable:  # rehashed
                                utable = self._unique
                                umask = self._unique_cap - 1
                            break
                        if lo_a[u] == r0 and hi_a[u] == r1 and var_a[u] == v:
                            r = u
                            break
                        h = (h + 1) & umask
            memo[n] = r
            return r

        out = memo_get(root)
        if out is None:
            out = rec(root)
        else:
            hits += 1
        self.apply_hits += hits
        self.apply_misses += misses
        return out

    def apply2(self, fn: Callable[[Any, Any], Any], a: int, b: int,
               memo: dict[int, int] | None = None) -> int:
        """Combine two diagrams leaf-wise with ``fn``.  ``memo`` is keyed by
        the packed pair ``(x << 30) | y``; share it only between calls with
        the same ``fn``."""
        np = self._np
        if np is not None and (self._frontier_worthy(a)
                               or self._frontier_worthy(b)):
            return self._apply2_pass(
                np, [(fn, {} if memo is None else memo, [(a, b)])])[0][0]
        self.frontier_scalar_ops += 1
        if memo is None:
            memo = {}
        key0 = (a << _KEY_SHIFT) | b
        out = memo.get(key0)
        if out is not None:
            self.apply_hits += 1
            return out
        var_a = self._var
        lo_a = self._lo
        hi_a = self._hi
        var_app = var_a.append
        lo_app = lo_a.append
        hi_app = hi_a.append
        leaf_values = self._leaf_values
        memo_get = memo.get
        leaf = self.leaf
        utable = self._unique
        umask = self._unique_cap - 1
        hits = 0
        misses = 0
        # Iterative kernel: no Python call per node-pair.  Memos are probed
        # *before* a child frame is pushed, so hit edges cost one dict probe
        # and no frame; node construction (unique probe + arena append) is
        # inlined.  Frames: (0, x, y) expand a pair known absent from the
        # memo; (1, key, lvl) combine the two results below; (2, r, 0)
        # re-emit a memo-hit result in post-order position.
        stack: list[tuple[int, int, int]] = [(0, a, b)]
        results: list[int] = []
        push = stack.append
        emit = results.append
        pop_r = results.pop
        while stack:
            tag, f1, f2 = stack.pop()
            if tag == 0:
                # Re-probe: a sibling's subtree may have resolved this pair
                # between the pre-push probe and now.
                r = memo_get((f1 << _KEY_SHIFT) | f2)
                if r is not None:
                    hits += 1
                    emit(r)
                    continue
                misses += 1
                lx = var_a[f1]
                ly = var_a[f2]
                if lx < ly:
                    lvl = lx
                    x0 = lo_a[f1]
                    x1 = hi_a[f1]
                    y0 = y1 = f2
                elif ly < lx:
                    lvl = ly
                    x0 = x1 = f1
                    y0 = lo_a[f2]
                    y1 = hi_a[f2]
                elif lx != LEAF_LEVEL:
                    lvl = lx
                    x0 = lo_a[f1]
                    x1 = hi_a[f1]
                    y0 = lo_a[f2]
                    y1 = hi_a[f2]
                else:
                    r = leaf(fn(leaf_values[lo_a[f1]], leaf_values[lo_a[f2]]))
                    if self._unique is not utable:
                        # fn re-entered the manager (merge functions over
                        # map-valued routes build nodes) and forced a
                        # rehash; the inline inserts below must probe the
                        # live table or duplicate ids break hash-consing.
                        utable = self._unique
                        umask = self._unique_cap - 1
                    memo[(f1 << _KEY_SHIFT) | f2] = r
                    emit(r)
                    continue
                k0 = (x0 << _KEY_SHIFT) | y0
                r0 = memo_get(k0)
                k1 = (x1 << _KEY_SHIFT) | y1
                r1 = memo_get(k1)
                if r0 is not None:
                    hits += 1
                    if r1 is not None:
                        # Both children cached: combine in place.
                        hits += 1
                        if r0 == r1:
                            r = r0
                        else:
                            h = (r0 * 461845907 + r1 * 433494437 + lvl) & umask
                            while True:
                                u = utable[h]
                                if u < 0:
                                    r = len(var_a)
                                    var_app(lvl)
                                    lo_app(r0)
                                    hi_app(r1)
                                    utable[h] = r
                                    n = self._unique_n + 1
                                    self._unique_n = n
                                    if 3 * n > 2 * self._unique_cap:
                                        self._grow_unique()
                                        utable = self._unique
                                        umask = self._unique_cap - 1
                                    if r >= self._next_growth_sample:
                                        self._growth_sample()
                                    break
                                if lo_a[u] == r0 and hi_a[u] == r1 \
                                        and var_a[u] == lvl:
                                    r = u
                                    break
                                h = (h + 1) & umask
                        memo[(f1 << _KEY_SHIFT) | f2] = r
                        emit(r)
                        continue
                    push((1, (f1 << _KEY_SHIFT) | f2, lvl))
                    emit(r0)
                    push((0, x1, y1))
                elif r1 is not None:
                    hits += 1
                    push((1, (f1 << _KEY_SHIFT) | f2, lvl))
                    push((2, r1, 0))
                    push((0, x0, y0))
                else:
                    push((1, (f1 << _KEY_SHIFT) | f2, lvl))
                    push((0, x1, y1))
                    push((0, x0, y0))
            elif tag == 1:
                r1 = pop_r()
                r0 = pop_r()
                if r0 == r1:
                    r = r0
                else:
                    h = (r0 * 461845907 + r1 * 433494437 + f2) & umask
                    while True:
                        u = utable[h]
                        if u < 0:
                            r = len(var_a)
                            var_app(f2)
                            lo_app(r0)
                            hi_app(r1)
                            utable[h] = r
                            n = self._unique_n + 1
                            self._unique_n = n
                            if 3 * n > 2 * self._unique_cap:
                                self._grow_unique()
                                utable = self._unique
                                umask = self._unique_cap - 1
                            if r >= self._next_growth_sample:
                                self._growth_sample()
                            break
                        if lo_a[u] == r0 and hi_a[u] == r1 \
                                and var_a[u] == f2:
                            r = u
                            break
                        h = (h + 1) & umask
                memo[f1] = r
                emit(r)
            else:
                emit(f1)
        self.apply_hits += hits
        self.apply_misses += misses
        return results[0]

    def apply2_many(self, items: list) -> list[int]:
        """Batched :meth:`apply2`: ``items`` holds ``(fn, a, b, memo)``
        tuples.  Items that share a ``memo`` dict must share ``fn`` (the
        memo *is* the group identity); ``memo=None`` items get a private
        memo each.  When the vectorised path is active, all items fuse
        into shared frontier passes (≤ 8 groups per pass — one dedup
        domain per group, one level-synchronisation domain per pass);
        otherwise this is a plain scalar loop.  Returns result roots
        aligned with ``items``."""
        items = list(items)
        np = self._np
        if np is None or not items or not any(
                self._frontier_worthy(a) or self._frontier_worthy(b)
                for _fn, a, b, _m in items):
            return [self.apply2(fn, a, b, memo) for fn, a, b, memo in items]
        w = len(items)
        self._batch_width_counts[w] = self._batch_width_counts.get(w, 0) + 1
        results: list[int | None] = [None] * w
        order: dict[Any, int] = {}
        gitems: list[tuple] = []
        for pos, (fn, a, b, memo) in enumerate(items):
            gk: Any = id(memo) if memo is not None else ("solo", pos)
            gi = order.get(gk)
            if gi is None:
                gi = len(gitems)
                order[gk] = gi
                gitems.append((fn, memo if memo is not None else {}, []))
            gitems[gi][2].append((pos, a, b))
        for start in range(0, len(gitems), _GROUP_MAX):
            chunk = gitems[start:start + _GROUP_MAX]
            outs = self._apply2_pass(
                np, [(fn, memo, [(a, b) for _p, a, b in pairs])
                     for fn, memo, pairs in chunk])
            for (_fn, _memo, pairs), rs in zip(chunk, outs):
                for (pos, _a, _b), r in zip(pairs, rs):
                    results[pos] = r
        return results  # type: ignore[return-value]

    def _apply2_pass(self, np, groups: list[tuple]) -> list[list[int]]:
        """One level-synchronous frontier pass over ≤ ``_GROUP_MAX`` apply2
        groups (``(fn, memo, [(a, b), ...])`` each).

        Phases: *discover* seeds and expansion children into a task table
        (dedup via ``np.unique`` over packed group|pair keys, memo served
        at discovery with one dict probe per distinct pair); *expand* the
        pending frontier one level at a time, ascending (children always
        sit at strictly higher levels), with vectorised cofactor gathers
        into the shadow columns; *leaf-combine* the distinct leaf pairs
        through the Python callbacks (the semantic boundary — re-entrant
        callbacks are safe because all pass state is function-local and
        shadow/unique views are re-fetched afterwards); *rebuild* bottom-up
        with batched unique-table insertion; *write back* one memo entry
        per miss, exactly like the scalar kernel."""
        int64 = np.int64
        KS = _KEY_SHIFT
        GS = _GROUP_SHIFT
        self.frontier_passes += 1
        self._sync_shadow()
        var_s, lo_s, hi_s = self._sh_var, self._sh_lo, self._sh_hi
        T = _TaskTable(np)
        index: dict[int, int] = {}      # packed key -> task index
        pend: dict[int, list] = {}
        expanded: dict[int, list] = {}
        leaf_chunks: list = []
        wb_chunks: list = []
        hits = 0
        misses = 0
        single = len(groups) == 1
        memo_gets = [memo.get for _fn, memo, _pairs in groups]

        def discover(new_keys):
            """Append tasks for distinct unseen keys (first-occurrence
            order); memo hits resolve immediately, misses bucket by level
            (or leaf)."""
            nonlocal hits, misses
            k = new_keys.size
            g = new_keys >> GS
            pk = new_keys & _GROUP_KEY_MASK
            a = pk >> KS
            b = pk & _KEY_MASK
            if single:
                mget = memo_gets[0]
                vals = [mget(x) for x in pk.tolist()]
            else:
                vals = [memo_gets[gi](x)
                        for gi, x in zip(g.tolist(), pk.tolist())]
            res = np.fromiter((-1 if v is None else v for v in vals),
                              int64, k)
            base = T.n
            T.grow_to(base + k)
            T.a[base:base + k] = a
            T.b[base:base + k] = b
            T.g[base:base + k] = g
            T.res[base:base + k] = res
            T.n = base + k
            idx = np.arange(base, base + k, dtype=int64)
            hit = res >= 0
            nh = int(hit.sum())
            hits += nh
            misses += k - nh
            lm = ~hit
            if lm.any():
                midx = idx[lm]
                lv = np.minimum(var_s[a[lm]], var_s[b[lm]])
                lf = lv == LEAF_LEVEL  # both operands leaves
                if lf.any():
                    leaf_chunks.append(midx[lf])
                il = ~lf
                if il.any():
                    lv2 = lv[il]
                    mi2 = midx[il]
                    for L in np.unique(lv2).tolist():
                        pend.setdefault(L, []).append(mi2[lv2 == L])
                wb_chunks.append(midx)
            return idx

        def resolve(refs):
            """Map packed keys to task indices, discovering new tasks and
            counting memo-style hits for duplicate/known references (the
            scalar kernel's re-probe accounting).  The key→task index is a
            plain dict: frontier widths on real control planes (~10²) make
            a sorted-array index's per-level maintenance the bottleneck,
            while dict probes stay O(1) per reference.  A first occurrence
            leaves a negative placeholder so in-batch duplicates count as
            hits without a second dedup pass."""
            nonlocal hits
            get = index.get
            newk: list[int] = []
            out = [0] * refs.size
            h = 0
            for j, key in enumerate(refs.tolist()):
                t = get(key)
                if t is None:
                    index[key] = t = -len(newk) - 1
                    newk.append(key)
                else:
                    h += 1
                out[j] = t
            hits += h
            o = np.fromiter(out, int64, len(out))
            if newk:
                ids = discover(np.fromiter(newk, int64, len(newk)))
                for key, ti in zip(newk, ids.tolist()):
                    index[key] = ti
                neg = o < 0
                o[neg] = ids[-o[neg] - 1]
            return o

        seed_idx = []
        for gi, (_fn, _memo, pairs) in enumerate(groups):
            g64 = int64(gi) << GS
            pa = np.fromiter((p[0] for p in pairs), int64, len(pairs))
            pb = np.fromiter((p[1] for p in pairs), int64, len(pairs))
            seed_idx.append(resolve(g64 | (pa << KS) | pb))

        while pend:
            lvl = min(pend)
            F = np.concatenate(pend.pop(lvl))
            self.frontier_levels += 1
            w = int(F.size)
            self._frontier_width_counts[w] = \
                self._frontier_width_counts.get(w, 0) + 1
            expanded.setdefault(lvl, []).append(F)
            a = T.a[F].astype(int64)
            b = T.b[F].astype(int64)
            ga = T.g[F].astype(int64) << GS
            asp = var_s[a] == lvl
            bsp = var_s[b] == lvl
            a0 = np.where(asp, lo_s[a], a)
            a1 = np.where(asp, hi_s[a], a)
            b0 = np.where(bsp, lo_s[b], b)
            b1 = np.where(bsp, hi_s[b], b)
            refs = np.concatenate((ga | (a0 << KS) | b0,
                                   ga | (a1 << KS) | b1))
            ridx = resolve(refs)
            T.lo[F] = ridx[:w]
            T.hi[F] = ridx[w:]

        if leaf_chunks:
            L = np.concatenate(leaf_chunks)
            lo_arr = self._lo
            leaf_values = self._leaf_values
            leaf = self.leaf
            fns = [fn for fn, _memo, _pairs in groups]
            if single:
                f0 = fns[0]
                res = [leaf(f0(leaf_values[lo_arr[ai]],
                               leaf_values[lo_arr[bi]]))
                       for ai, bi in zip(T.a[L].tolist(), T.b[L].tolist())]
            else:
                res = [leaf(fns[gi](leaf_values[lo_arr[ai]],
                                    leaf_values[lo_arr[bi]]))
                       for gi, ai, bi in zip(T.g[L].tolist(),
                                             T.a[L].tolist(),
                                             T.b[L].tolist())]
            T.res[L] = np.array(res, int64) if res else 0
            # The callbacks may have re-entered the manager (merge
            # functions over map-valued routes build nodes, the PR 6
            # rehash-under-callback class): re-sync before rebuilding.
            self._sync_shadow()

        for lvl in sorted(expanded, reverse=True):
            F = np.concatenate(expanded[lvl])
            T.res[F] = self._mk_level_np(np, lvl, T.res[T.lo[F]],
                                         T.res[T.hi[F]])

        if wb_chunks:
            W = np.concatenate(wb_chunks)
            pk = (T.a[W].astype(int64) << KS) | T.b[W]
            if single:
                groups[0][1].update(zip(pk.tolist(), T.res[W].tolist()))
            else:
                memos = [memo for _fn, memo, _pairs in groups]
                for gi, ki, ri in zip(T.g[W].tolist(), pk.tolist(),
                                      T.res[W].tolist()):
                    memos[gi][ki] = ri

        self.apply_hits += hits
        self.apply_misses += misses
        self.frontier_tasks += T.n
        return [T.res[idx].tolist() for idx in seed_idx]

    def map_ite(self, pred: int, fn_true: Callable[[Any], Any],
                fn_false: Callable[[Any], Any], root: int,
                memo: dict[int, int] | None = None,
                memo_true: dict[int, int] | None = None,
                memo_false: dict[int, int] | None = None) -> int:
        """The NV ``mapIte`` primitive (fig 11 of the paper).

        ``memo`` (packed ``(pred << 30) | node`` keys) plus the two branch
        memos (``apply1`` keying) may be shared across calls with the same
        function pair — the simulator applies the same route policies every
        round, so cross-call sharing turns repeat rounds into cache hits.
        """
        np = self._np
        if np is not None and (self._frontier_worthy(root)
                               or self._frontier_worthy(pred)):
            return self._map_pass(
                np, [(fn_true, fn_false,
                      {} if memo is None else memo,
                      {} if memo_true is None else memo_true,
                      {} if memo_false is None else memo_false,
                      [(pred, root)])])[0][0]
        self.frontier_scalar_ops += 1
        if memo is None:
            memo = {}
        if memo_true is None:
            memo_true = {}
        if memo_false is None:
            memo_false = {}
        var_a = self._var
        lo_a = self._lo
        hi_a = self._hi
        leaf_values = self._leaf_values
        memo_get = memo.get
        true = self.true
        false = self.false
        mk = self.mk
        leaf = self.leaf
        hits = 0
        misses = 0

        memo_true_get = memo_true.get
        memo_false_get = memo_false.get
        utable = self._unique
        umask = self._unique_cap - 1

        # All three kernels look memos up *before* recursing (Python calls
        # ∝ cache misses, not visited edges) and inline the unique-table
        # probe (see mk) so node construction needs no method call.
        def rec_t(n: int) -> int:  # apply1(fn_true) specialised
            nonlocal hits, misses, utable, umask
            misses += 1
            if var_a[n] == LEAF_LEVEL:
                r = leaf(fn_true(leaf_values[lo_a[n]]))
            else:
                c = lo_a[n]
                r0 = memo_true_get(c)
                if r0 is None:
                    r0 = rec_t(c)
                else:
                    hits += 1
                c = hi_a[n]
                r1 = memo_true_get(c)
                if r1 is None:
                    r1 = rec_t(c)
                else:
                    hits += 1
                if r0 == r1:
                    r = r0
                else:
                    v = var_a[n]
                    h = (r0 * 461845907 + r1 * 433494437 + v) & umask
                    while True:
                        u = utable[h]
                        if u < 0:
                            r = mk(v, r0, r1)
                            if self._unique is not utable:  # rehashed
                                utable = self._unique
                                umask = self._unique_cap - 1
                            break
                        if lo_a[u] == r0 and hi_a[u] == r1 and var_a[u] == v:
                            r = u
                            break
                        h = (h + 1) & umask
            memo_true[n] = r
            return r

        def rec_f(n: int) -> int:  # apply1(fn_false) specialised
            nonlocal hits, misses, utable, umask
            misses += 1
            if var_a[n] == LEAF_LEVEL:
                r = leaf(fn_false(leaf_values[lo_a[n]]))
            else:
                c = lo_a[n]
                r0 = memo_false_get(c)
                if r0 is None:
                    r0 = rec_f(c)
                else:
                    hits += 1
                c = hi_a[n]
                r1 = memo_false_get(c)
                if r1 is None:
                    r1 = rec_f(c)
                else:
                    hits += 1
                if r0 == r1:
                    r = r0
                else:
                    v = var_a[n]
                    h = (r0 * 461845907 + r1 * 433494437 + v) & umask
                    while True:
                        u = utable[h]
                        if u < 0:
                            r = mk(v, r0, r1)
                            if self._unique is not utable:  # rehashed
                                utable = self._unique
                                umask = self._unique_cap - 1
                            break
                        if lo_a[u] == r0 and hi_a[u] == r1 and var_a[u] == v:
                            r = u
                            break
                        h = (h + 1) & umask
            memo_false[n] = r
            return r

        def rec(p: int, m: int, key: int) -> int:
            nonlocal hits, utable, umask
            if p == true:
                r = memo_true_get(m)
                if r is None:
                    r = rec_t(m)
                else:
                    hits += 1
            elif p == false:
                r = memo_false_get(m)
                if r is None:
                    r = rec_f(m)
                else:
                    hits += 1
            else:
                lp = var_a[p]
                lm = var_a[m]
                if lp < lm:
                    lvl = lp
                    p0, p1 = lo_a[p], hi_a[p]
                    m0 = m1 = m
                elif lm < lp:
                    lvl = lm
                    p0 = p1 = p
                    m0, m1 = lo_a[m], hi_a[m]
                else:
                    lvl = lp
                    p0, p1 = lo_a[p], hi_a[p]
                    m0, m1 = lo_a[m], hi_a[m]
                k = (p0 << _KEY_SHIFT) | m0
                r0 = memo_get(k)
                if r0 is None:
                    r0 = rec(p0, m0, k)
                k = (p1 << _KEY_SHIFT) | m1
                r1 = memo_get(k)
                if r1 is None:
                    r1 = rec(p1, m1, k)
                if r0 == r1:
                    r = r0
                else:
                    h = (r0 * 461845907 + r1 * 433494437 + lvl) & umask
                    while True:
                        u = utable[h]
                        if u < 0:
                            r = mk(lvl, r0, r1)
                            if self._unique is not utable:  # rehashed
                                utable = self._unique
                                umask = self._unique_cap - 1
                            break
                        if lo_a[u] == r0 and hi_a[u] == r1 and var_a[u] == lvl:
                            r = u
                            break
                        h = (h + 1) & umask
            memo[key] = r
            return r

        key0 = (pred << _KEY_SHIFT) | root
        out = memo_get(key0)
        if out is None:
            out = rec(pred, root, key0)
        self.apply_hits += hits
        self.apply_misses += misses
        return out

    def apply1_many(self, items: list) -> list[int]:
        """Batched :meth:`apply1`: ``items`` holds ``(fn, root, memo)``
        tuples; same grouping contract as :meth:`apply2_many` (shared memo
        dict implies shared ``fn``)."""
        items = list(items)
        np = self._np
        if np is None or not items or not any(
                self._frontier_worthy(r) for _fn, r, _m in items):
            return [self.apply1(fn, root, memo) for fn, root, memo in items]
        true = self.true
        return self._map_many(
            np, [(true, fn, None, root, None, memo, None)
                 for fn, root, memo in items])

    def map_ite_many(self, items: list) -> list[int]:
        """Batched :meth:`map_ite`: ``items`` holds ``(pred, fn_true,
        fn_false, root, memo, memo_true, memo_false)`` tuples.  Items
        sharing a ``memo`` dict must share the function pair and branch
        memos; preds may differ per item (the fault driver's per-edge
        scenario restrictions do)."""
        items = list(items)
        np = self._np
        if np is None or not items or not any(
                self._frontier_worthy(r) or self._frontier_worthy(p)
                for p, _ft, _ff, r, _m, _mt, _mf in items):
            return [self.map_ite(p, ft, ff, r, m, mt, mf)
                    for p, ft, ff, r, m, mt, mf in items]
        return self._map_many(np, items)

    def _map_many(self, np, items: list) -> list[int]:
        """Group ``(pred, fn_true, fn_false, root, memo, memo_true,
        memo_false)`` items by memo identity and run ≤ ``_GROUP_MAX``-group
        frontier passes."""
        w = len(items)
        self._batch_width_counts[w] = self._batch_width_counts.get(w, 0) + 1
        results: list[int | None] = [None] * w
        order: dict[Any, int] = {}
        gitems: list[tuple] = []
        for pos, (pred, ft, ff, root, memo, mt, mf) in enumerate(items):
            if memo is not None:
                gk: Any = id(memo)
            elif ff is None and mt is not None:
                # apply1-sourced item: the branch memo is the identity.
                gk = ("a1", id(mt))
            else:
                gk = ("solo", pos)
            gi = order.get(gk)
            if gi is None:
                gi = len(gitems)
                order[gk] = gi
                gitems.append((ft, ff,
                               memo if memo is not None else {},
                               mt if mt is not None else {},
                               mf if mf is not None else {}, []))
            gitems[gi][5].append((pos, pred, root))
        for start in range(0, len(gitems), _GROUP_MAX):
            chunk = gitems[start:start + _GROUP_MAX]
            outs = self._map_pass(
                np, [(ft, ff, memo, mt, mf,
                      [(pred, root) for _pos, pred, root in seeds])
                     for ft, ff, memo, mt, mf, seeds in chunk])
            for (_ft, _ff, _m, _mt, _mf, seeds), rs in zip(chunk, outs):
                for (pos, _pred, _root), r in zip(seeds, rs):
                    results[pos] = r
        return results  # type: ignore[return-value]

    def _map_pass(self, np, groups: list[tuple]) -> list[list[int]]:
        """Level-synchronous kernel behind ``apply1``/``map_ite`` (see
        :meth:`_apply2_pass` for the phase structure).

        ``groups`` entries are ``(fn_true, fn_false, memo, memo_true,
        memo_false, seeds)`` with ``seeds = [(pred, root), ...]``.  Three
        task families share one pass: family 0 is the pred×map product
        (probed/written against ``memo``, packed ``(pred << 30) | node``
        keys), families 1/2 are the fn_true/fn_false apply1 branches
        (node-id keys against ``memo_true``/``memo_false`` — the same
        tables plain ``apply1`` calls of the same closure share, so branch
        work stays deduped across the whole workload exactly as in the
        scalar kernel).  A product task whose pred cofactor hits
        true/false hands its child to the corresponding branch family,
        mirroring the scalar ``rec``/``rec_t``/``rec_f`` dispatch."""
        int64 = np.int64
        KS = _KEY_SHIFT
        GS = _GROUP_SHIFT
        RS = _REF_SHIFT
        self.frontier_passes += 1
        self._sync_shadow()
        var_s, lo_s, hi_s = self._sh_var, self._sh_lo, self._sh_hi
        true = self.true
        false = self.false
        tabs = (_TaskTable(np), _TaskTable(np), _TaskTable(np))
        indexes: tuple[dict, ...] = ({}, {}, {})  # per-family key -> task
        pend: dict[int, list] = {}           # level -> [(family, chunk)]
        expanded: dict[int, dict] = {}       # level -> {family: [chunks]}
        leaf_chunks: list[list] = [[], []]   # family 1 / family 2
        wb_chunks: list[list] = [[], [], []]
        fwd_chunks: list = []                # fam-0 true/false-pred aliases
        hits = 0
        misses = 0
        single = len(groups) == 1
        gets = ([g[2].get for g in groups],
                [g[3].get for g in groups],
                [g[4].get for g in groups])

        def discover(fam, new_keys):
            nonlocal hits, misses
            T = tabs[fam]
            k = new_keys.size
            g = new_keys >> GS
            pk = new_keys & _GROUP_KEY_MASK
            fam_gets = gets[fam]
            if fam == 0:
                a = pk >> KS        # pred node
                b = pk & _KEY_MASK  # map node
            else:
                a = pk              # map node
                b = np.zeros(k, int64)
            if single:
                mget = fam_gets[0]
                vals = [mget(x) for x in pk.tolist()]
            else:
                vals = [fam_gets[gi](x)
                        for gi, x in zip(g.tolist(), pk.tolist())]
            res = np.fromiter((-1 if v is None else v for v in vals),
                              int64, k)
            base = T.n
            T.grow_to(base + k)
            T.a[base:base + k] = a
            T.b[base:base + k] = b
            T.g[base:base + k] = g
            T.res[base:base + k] = res
            T.n = base + k
            idx = np.arange(base, base + k, dtype=int64)
            hit = res >= 0
            if fam:
                # Only the branch families count: the scalar map_ite
                # kernel attributes hits/misses to rec_t/rec_f alone.
                nh = int(hit.sum())
                hits += nh
                misses += k - nh
            lm = ~hit
            if lm.any():
                midx = idx[lm]
                if fam == 0:
                    # A true/false pred makes the product key an *alias*
                    # of a branch-family task: delegate on the first
                    # reference (that is when the scalar kernel probes the
                    # branch memo and counts), absorb repeats silently via
                    # this fam-0 entry, exactly like scalar ``memo``.
                    al, bl, gl = a[lm], b[lm], g[lm]
                    is_t = al == true
                    is_f = al == false
                    fwd = is_t | is_f
                    if fwd.any():
                        for f, msk in ((1, is_t), (2, is_f)):
                            if msk.any():
                                T.lo[midx[msk]] = resolve(
                                    f, (gl[msk] << GS) | bl[msk])
                        fwd_chunks.append(midx[fwd])
                    il = ~fwd
                    if il.any():
                        lv = np.minimum(var_s[al[il]], var_s[bl[il]])
                        mi2 = midx[il]
                        for L in np.unique(lv).tolist():
                            pend.setdefault(L, []).append(
                                (0, mi2[lv == L]))
                else:
                    lv = var_s[a[lm]]
                    lf = lv == LEAF_LEVEL
                    if lf.any():
                        leaf_chunks[fam - 1].append(midx[lf])
                    il = ~lf
                    if il.any():
                        lv2 = lv[il]
                        mi2 = midx[il]
                        for L in np.unique(lv2).tolist():
                            pend.setdefault(L, []).append(
                                (fam, mi2[lv2 == L]))
                wb_chunks[fam].append(midx)
            return idx

        def resolve(fam, refs):
            # Dict-backed key→task index with in-batch placeholder dedup —
            # see :meth:`_apply2_pass`'s resolve for the rationale.  Only
            # the branch families count hits (scalar map_ite attributes
            # hits/misses to rec_t/rec_f alone).
            nonlocal hits
            get = indexes[fam].get
            index = indexes[fam]
            newk: list[int] = []
            out = [0] * refs.size
            h = 0
            for j, key in enumerate(refs.tolist()):
                t = get(key)
                if t is None:
                    index[key] = t = -len(newk) - 1
                    newk.append(key)
                else:
                    h += 1
                out[j] = t
            if fam:
                hits += h
            o = np.fromiter(out, int64, len(out))
            if newk:
                ids = discover(fam, np.fromiter(newk, int64, len(newk)))
                for key, ti in zip(newk, ids.tolist()):
                    index[key] = ti
                neg = o < 0
                o[neg] = ids[-o[neg] - 1]
            return (int64(fam) << RS) | o

        seed_refs = []
        for gi, (_ft, _ff, _m, _mt, _mf, seeds) in enumerate(groups):
            g64 = int64(gi) << GS
            p = np.fromiter((s[0] for s in seeds), int64, len(seeds))
            r = np.fromiter((s[1] for s in seeds), int64, len(seeds))
            if _ff is None:
                # apply1-sourced group: the scalar kernel probes the
                # branch memo per call (counting hits), so seeds resolve
                # directly in family 1 — no product alias.
                seed_refs.append(resolve(1, g64 | r))
            else:
                seed_refs.append(resolve(0, g64 | (p << KS) | r))

        while pend:
            lvl = min(pend)
            buckets = pend.pop(lvl)
            self.frontier_levels += 1
            wtot = sum(int(c.size) for _f, c in buckets)
            self._frontier_width_counts[wtot] = \
                self._frontier_width_counts.get(wtot, 0) + 1
            byfam: dict[int, list] = {}
            for f, c in buckets:
                byfam.setdefault(f, []).append(c)
            for f, cl in byfam.items():
                F = np.concatenate(cl)
                expanded.setdefault(lvl, {}).setdefault(f, []).append(F)
                T = tabs[f]
                g64 = T.g[F].astype(int64) << GS
                if f == 0:
                    p = T.a[F].astype(int64)
                    m = T.b[F].astype(int64)
                    psp = var_s[p] == lvl
                    msp = var_s[m] == lvl
                    p0 = np.where(psp, lo_s[p], p)
                    p1 = np.where(psp, hi_s[p], p)
                    m0 = np.where(msp, lo_s[m], m)
                    m1 = np.where(msp, hi_s[m], m)
                    T.lo[F] = resolve(0, g64 | (p0 << KS) | m0)
                    T.hi[F] = resolve(0, g64 | (p1 << KS) | m1)
                else:
                    m = T.a[F].astype(int64)
                    T.lo[F] = resolve(f, g64 | lo_s[m])
                    T.hi[F] = resolve(f, g64 | hi_s[m])

        lo_arr = self._lo
        leaf_values = self._leaf_values
        leaf = self.leaf
        for fam in (1, 2):
            chunks = leaf_chunks[fam - 1]
            if not chunks:
                continue
            T = tabs[fam]
            L = np.concatenate(chunks)
            fns = [g[fam - 1] for g in groups]
            res = [leaf(fns[gi](leaf_values[lo_arr[mi]]))
                   for gi, mi in zip(T.g[L].tolist(), T.a[L].tolist())]
            T.res[L] = np.array(res, int64) if res else 0
        # Callbacks may have re-entered the manager: re-sync before the
        # bottom-up rebuild batches hit the unique table.
        self._sync_shadow()

        def res_of(refs):
            fam = refs >> RS
            idx = refs & _REF_MASK
            out = np.empty(refs.size, int64)
            for f in (0, 1, 2):
                m = fam == f
                if m.any():
                    out[m] = tabs[f].res[idx[m]]
            # Fam-0 alias tasks delegate to their branch-family child
            # (always resolved first: the branch root sits strictly below
            # the aliasing product's level, or in the leaf phase).
            bad = out < 0
            if bad.any():
                out[bad] = res_of(tabs[0].lo[idx[bad]])
            return out

        for lvl in sorted(expanded, reverse=True):
            for f, cl in expanded[lvl].items():
                T = tabs[f]
                F = np.concatenate(cl)
                T.res[F] = self._mk_level_np(np, lvl, res_of(T.lo[F]),
                                             res_of(T.hi[F]))

        if fwd_chunks:
            T0 = tabs[0]
            FW = np.concatenate(fwd_chunks)
            T0.res[FW] = res_of(T0.lo[FW])

        for fam in (0, 1, 2):
            chunks = wb_chunks[fam]
            if not chunks:
                continue
            T = tabs[fam]
            W = np.concatenate(chunks)
            if fam == 0:
                pk = (T.a[W].astype(int64) << KS) | T.b[W]
            else:
                pk = T.a[W].astype(int64)
            if single:
                groups[0][2 + fam].update(zip(pk.tolist(),
                                              T.res[W].tolist()))
            else:
                memos = [g[2 + fam] for g in groups]
                for gi, ki, ri in zip(T.g[W].tolist(), pk.tolist(),
                                      T.res[W].tolist()):
                    memos[gi][ki] = ri

        self.apply_hits += hits
        self.apply_misses += misses
        self.frontier_tasks += tabs[0].n + tabs[1].n + tabs[2].n
        return [res_of(refs).tolist() for refs in seed_refs]

    # ------------------------------------------------------------------
    # Path evaluation
    # ------------------------------------------------------------------

    def restrict_eval(self, root: int, assignment: Callable[[int], bool]) -> Any:
        var_a = self._var
        n = root
        while var_a[n] != LEAF_LEVEL:
            n = self._hi[n] if assignment(var_a[n]) else self._lo[n]
        return self._leaf_values[self._lo[n]]

    def set_path(self, root: int, bits: list[tuple[int, bool]],
                 value_leaf: int) -> int:
        var_a = self._var

        def rec(n: int, i: int) -> int:
            if i == len(bits):
                return value_leaf
            lvl, bit = bits[i]
            nl = var_a[n]
            if nl == lvl:
                lo, hi = self._lo[n], self._hi[n]
            elif nl > lvl:  # variable absent: both children are n itself
                lo, hi = n, n
            else:
                raise ValueError(
                    "set_path bits must cover all levels above the map's leaves")
            if bit:
                return self.mk(lvl, lo, rec(hi, i + 1))
            return self.mk(lvl, rec(lo, i + 1), hi)

        return rec(root, 0)

    def get_path(self, root: int, bits: dict[int, bool]) -> Any:
        var_a = self._var
        n = root
        while var_a[n] != LEAF_LEVEL:
            n = self._hi[n] if bits.get(var_a[n], False) else self._lo[n]
        return self._leaf_values[self._lo[n]]

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------

    def leaves(self, root: int) -> list[Any]:
        """Distinct leaf values reachable from ``root``."""
        var_a = self._var
        lo_a = self._lo
        np = numpy_or_none()
        if np is not None:
            ids = self._reachable(root)
            var = np.frombuffer(var_a, dtype=np.int32)
            return [self._leaf_values[lo_a[int(n)]]
                    for n in ids[var[ids] == LEAF_LEVEL]]
        return [self._leaf_values[lo_a[n]] for n in self._reachable_py(root)
                if var_a[n] == LEAF_LEVEL]

    def sat_count(self, root: int, num_vars: int) -> int:
        return self.sat_count_from(root, 0, num_vars)

    def sat_count_from(self, root: int, lvl: int, num_vars: int) -> int:
        """Assignments over variables ``lvl..num_vars-1`` reaching a truthy
        leaf.  Vectorised bottom-up over the reachable sub-DAG when numpy is
        available (ascending ids are a topological order); pure-Python
        otherwise, and always when counts could overflow int64."""
        var_a = self._var
        top = var_a[root]
        start = num_vars if top == LEAF_LEVEL else top
        if start < lvl:
            raise ValueError("diagram tests variables above the requested range")
        # Counts depend only on the (immutable) sub-DAG, so they are cached
        # across calls — ``leaf_groups`` re-counts the same domain regions
        # for every map it is asked about.
        cache = self._satcount_cache
        count = cache.get((root, num_vars))
        if count is None:
            # Small sub-DAGs (the common leaf_groups case) are counted with
            # a plain dict sweep; large ones use the vectorised per-level
            # pass.
            ids = self._reachable_py_capped(root, _NP_REACHABLE_CUTOFF)
            np = numpy_or_none()
            if ids is None and np is not None and num_vars < 62:
                count = self._sat_count_np(np, root, num_vars)
            else:
                if ids is None:
                    ids = self._reachable_py(root)
                count = self._sat_count_py(ids, root, num_vars)
            cache[(root, num_vars)] = count
        return count << (start - lvl)

    def _sat_count_np(self, np, root: int, num_vars: int) -> int:
        """Counts over variables strictly below each node's own level,
        computed level-by-level: children sit at strictly higher levels than
        their parents, so sweeping levels bottom-up resolves every child
        dependency with one vectorised shift-and-add per level."""
        ids = np.asarray(self._reachable(root), dtype=np.int64)
        var = np.frombuffer(self._var, dtype=np.int32)[ids].astype(np.int64)
        lo = np.frombuffer(self._lo, dtype=np.int32)[ids]
        hi = np.frombuffer(self._hi, dtype=np.int32)[ids]
        # Effective level: leaves count from num_vars.
        eff = np.where(var == LEAF_LEVEL, num_vars, var)
        # Dense renumbering of the sub-DAG (ids ascending -> topological).
        slot = np.full(int(ids[-1]) + 1, -1, dtype=np.int64)
        slot[ids] = np.arange(ids.size)
        counts = np.zeros(ids.size, dtype=np.int64)
        is_leaf = var == LEAF_LEVEL
        truthy = [bool(self._leaf_values[int(r)]) for r in lo[is_leaf]]
        counts[is_leaf] = np.array(truthy, dtype=np.int64)
        internal = np.nonzero(~is_leaf)[0]
        if internal.size:
            lo_slot = slot[lo[internal]]
            hi_slot = slot[hi[internal]]
            lvl = var[internal]
            lo_skip = eff[lo_slot] - (lvl + 1)
            hi_skip = eff[hi_slot] - (lvl + 1)
            for level in np.unique(lvl)[::-1]:
                sel = np.nonzero(lvl == level)[0]
                counts[internal[sel]] = (
                    np.left_shift(counts[lo_slot[sel]], lo_skip[sel])
                    + np.left_shift(counts[hi_slot[sel]], hi_skip[sel]))
        return int(counts[slot[root]])

    def _sat_count_py(self, ids: list[int], root: int, num_vars: int) -> int:
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        leaf_values = self._leaf_values
        counts: dict[int, int] = {}
        for n in ids:
            v = var_a[n]
            if v == LEAF_LEVEL:
                counts[n] = 1 if leaf_values[lo_a[n]] else 0
            else:
                lo, hi = lo_a[n], hi_a[n]
                lo_eff = num_vars if var_a[lo] == LEAF_LEVEL else var_a[lo]
                hi_eff = num_vars if var_a[hi] == LEAF_LEVEL else var_a[hi]
                counts[n] = (counts[lo] << (lo_eff - v - 1)) + \
                            (counts[hi] << (hi_eff - v - 1))
        return counts[root]

    def leaf_groups(self, root: int, num_vars: int,
                    domain: int | None = None) -> dict[Any, int]:
        """Each distinct leaf value with the number of (valid) keys reaching
        it — the paper's dynamically discovered failure-equivalence classes."""
        if domain is None:
            domain = self.true
        var_a = self._var
        lo_a = self._lo
        leaf_values = self._leaf_values
        false = self.false
        # The (map node, domain node) product memo is shared across calls:
        # an analysis reports every network node's map against one domain,
        # and converged maps share most of their structure.  Entries are
        # never mutated after insertion, so cross-call reuse is safe.
        memo = self._leaf_groups_memo.setdefault(num_vars, {})

        def top(n: int, d: int) -> int:
            t = min(var_a[n], var_a[d])
            return num_vars if t == LEAF_LEVEL else t

        def rec(n: int, d: int) -> dict[Any, int]:
            if d == false:
                return {}
            key = (n << _KEY_SHIFT) | d
            cached = memo.get(key)
            if cached is not None:
                return cached
            if var_a[n] == LEAF_LEVEL:
                cnt = self.sat_count_from(d, top(n, d), num_vars)
                result = {leaf_values[lo_a[n]]: cnt} if cnt else {}
            else:
                lvl = top(n, d)
                n0, n1 = self._cof(n, lvl)
                d0, d1 = self._cof(d, lvl)
                result = {}
                for nn, dd in ((n0, d0), (n1, d1)):
                    sub = rec(nn, dd)
                    scale = top(nn, dd) - (lvl + 1)
                    for value, cnt in sub.items():
                        result[value] = result.get(value, 0) + (cnt << scale)
            memo[key] = result
            return result

        base = rec(root, domain)
        scale = top(root, domain)
        return {value: cnt << scale for value, cnt in base.items()}

    def any_sat(self, root: int, num_vars: int) -> dict[int, bool] | None:
        if root == self.false:
            return None
        var_a = self._var
        assignment: dict[int, bool] = {}
        n = root
        while var_a[n] != LEAF_LEVEL:
            lvl = var_a[n]
            if self._lo[n] != self.false:
                assignment[lvl] = False
                n = self._lo[n]
            else:
                assignment[lvl] = True
                n = self._hi[n]
        if not self._leaf_values[self._lo[n]]:
            return None
        for lvl in range(num_vars):
            assignment.setdefault(lvl, False)
        return assignment

    def iter_paths(self, root: int, num_vars: int
                   ) -> Iterator[tuple[dict[int, bool], Any]]:
        var_a = self._var
        path: dict[int, bool] = {}

        def rec(n: int) -> Iterator[tuple[dict[int, bool], Any]]:
            if var_a[n] == LEAF_LEVEL:
                yield dict(path), self._leaf_values[self._lo[n]]
                return
            lvl = var_a[n]
            path[lvl] = False
            yield from rec(self._lo[n])
            path[lvl] = True
            yield from rec(self._hi[n])
            del path[lvl]

        yield from rec(root)

    # ------------------------------------------------------------------
    # Snapshots (FrozenMap transport)
    # ------------------------------------------------------------------

    def snapshot(self, root: int) -> tuple[bytes, list[Any]]:
        """Canonical flat snapshot of the sub-DAG rooted at ``root``.

        Nodes are renumbered in DFS preorder (lo before hi, root = 0) into
        one ``array('i')`` of ``(var, lo, hi)`` triples; leaves store ``-1``
        in var and an index into the returned leaf list.  Equal diagrams —
        across engines and across processes — produce byte-identical blobs,
        so :class:`~repro.eval.maps.FrozenMap` equality stays structural.
        """
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        leaf_values = self._leaf_values
        out = array("i")
        leaves: list[Any] = []
        renum: dict[int, int] = {}

        def rec(n: int) -> int:
            new = renum.get(n)
            if new is not None:
                return new
            new = len(renum)
            renum[n] = new
            base = len(out)
            out.extend((0, 0, 0))  # placeholder triple at slot `new`
            if var_a[n] == LEAF_LEVEL:
                out[base] = -1
                out[base + 1] = len(leaves)
                out[base + 2] = -1
                leaves.append(leaf_values[lo_a[n]])
            else:
                out[base] = var_a[n]
                out[base + 1] = rec(lo_a[n])
                out[base + 2] = rec(hi_a[n])
            return new

        rec(root)
        return snapshot_bytes(out), leaves

    # ------------------------------------------------------------------
    # Cache management and instrumentation
    # ------------------------------------------------------------------

    def register_clear_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` whenever :meth:`clear_caches` drops the memo tables
        (used by owners of caches derived from this manager's nodes)."""
        self._clear_hooks.append(hook)

    def clear_caches(self) -> None:
        """Drop operation memo tables and their load counters.  Unique and
        leaf tables are untouched, so hash-consed node identity survives.
        The frontier scratch state (shadow columns, size classes) is also
        dropped and rebuilt lazily by the next vectorised pass."""
        self._init_op_caches()
        self._satcount_cache.clear()
        self._leaf_groups_memo.clear()
        self._sh_var = self._sh_lo = self._sh_hi = None
        self._sh_n = 0
        self._size_class.clear()
        for hook in self._clear_hooks:
            hook()

    def op_cache_size(self) -> int:
        """Live entries across the operation memo tables (load counters are
        reset by :meth:`clear_caches`, so gauges never report stale sizes)."""
        return self._not_n + self._and_n + self._xor_n + self._ite_n

    def op_cache_capacity(self) -> int:
        """Total slots allocated across the operation memo tables."""
        return self._not_cap + self._and_cap + self._xor_cap + self._ite_cap

    def stats(self) -> dict[str, int]:
        return {
            "nodes": len(self._var),
            "unique_entries": self._unique_n,
            "unique_capacity": self._unique_cap,
            "leaves": len(self._leaf_values),
            "op_cache_entries": self.op_cache_size(),
            "op_cache_capacity": self.op_cache_capacity(),
            "op_cache_hits": self.op_hits,
            "op_cache_misses": self.op_misses,
            "apply_cache_hits": self.apply_hits,
            "apply_cache_misses": self.apply_misses,
            "frontier.passes": self.frontier_passes,
            "frontier.tasks": self.frontier_tasks,
            "frontier.levels": self.frontier_levels,
            "frontier.scalar_ops": self.frontier_scalar_ops,
        }

    # ------------------------------------------------------------------
    # Kernel telemetry (NV_TELEMETRY; see repro.telemetry)
    # ------------------------------------------------------------------

    def probe_length_counts(self) -> dict[str, dict[int, int]]:
        """Exact probe-length distributions (``length -> entries``) of the
        unique table and every op cache, recomputed by scanning the tables.

        Linear probing with stride 1 and no deletions means an entry at
        slot ``s`` whose key hashes to home slot ``h`` is found after
        ``((s - h) mod cap) + 1`` probes — so the distribution is
        recoverable from the table alone, with zero hot-path bookkeeping.
        The home-slot computations below must mirror the probe sites
        (``mk``/``bnot``/``band``/``bxor``/``bite``) exactly;
        ``tests/bdd/test_telemetry.py`` cross-checks them against a
        brute-force re-probe of every stored key.
        """
        counts: dict[int, int] = {}
        table = self._unique
        cap = self._unique_cap
        mask = cap - 1
        var_a, lo_a, hi_a = self._var, self._lo, self._hi
        for s in range(cap):
            n = table[s]
            if n < 0:
                continue
            h = (lo_a[n] * 461845907 + hi_a[n] * 433494437 + var_a[n]) & mask
            d = ((s - h) & mask) + 1
            counts[d] = counts.get(d, 0) + 1
        return {
            "unique": counts,
            "op_not": _probe_counts_single(self._not_keys, self._not_cap),
            "op_and": _probe_counts_packed(self._and_keys, self._and_cap),
            "op_xor": _probe_counts_packed(self._xor_keys, self._xor_cap),
            "op_ite": _probe_counts_ite(self._ite_keys1, self._ite_keys2,
                                        self._ite_cap),
        }

    def telemetry(self) -> tuple[dict[str, int], dict[str, Any]]:
        """``(counters, histograms)`` for :func:`repro.telemetry.flush_manager`:
        rehash/clear event counts plus log2 probe-length histograms."""
        from .. import telemetry as _telemetry

        counters = {
            "unique_rehashes": self.unique_rehashes,
            "op_rehashes": self.op_rehashes,
            "op_cache_clears": self.op_cache_clears,
        }
        hists = {
            f"{name}_probe_len": _telemetry.histogram_from_counts(c)
            for name, c in self.probe_length_counts().items() if c
        }
        if self._frontier_width_counts:
            hists["frontier_width"] = _telemetry.histogram_from_counts(
                self._frontier_width_counts)
        if self._batch_width_counts:
            hists["batch_width"] = _telemetry.histogram_from_counts(
                self._batch_width_counts)
        return counters, hists


def _probe_counts_single(keys, cap: int) -> dict[int, int]:
    """Probe-length counts of a single-int-key op table (home slot
    ``key * _MULT_A & mask`` — the ``bnot`` probe site)."""
    mask = cap - 1
    counts: dict[int, int] = {}
    for s in range(cap):
        k = keys[s]
        if k < 0:
            continue
        h = k * _MULT_A & mask
        d = ((s - h) & mask) + 1
        counts[d] = counts.get(d, 0) + 1
    return counts


def _probe_counts_packed(keys, cap: int) -> dict[int, int]:
    """Probe-length counts of a packed-pair op table (home slot
    ``(a * _MULT_A + b * _MULT_B) & mask`` — the ``band``/``bxor`` sites)."""
    mask = cap - 1
    counts: dict[int, int] = {}
    for s in range(cap):
        k = keys[s]
        if k < 0:
            continue
        h = ((k >> _KEY_SHIFT) * _MULT_A + (k & _KEY_MASK) * _MULT_B) & mask
        d = ((s - h) & mask) + 1
        counts[d] = counts.get(d, 0) + 1
    return counts


def _probe_counts_ite(keys1, keys2, cap: int) -> dict[int, int]:
    """Probe-length counts of the three-operand ite table (home slot
    ``(c * _MULT_A + t * _MULT_B + e * _MULT_C) & mask``)."""
    mask = cap - 1
    counts: dict[int, int] = {}
    for s in range(cap):
        k1 = keys1[s]
        if k1 < 0:
            continue
        h = ((k1 >> _KEY_SHIFT) * _MULT_A + (k1 & _KEY_MASK) * _MULT_B
             + keys2[s] * _MULT_C) & mask
        d = ((s - h) & mask) + 1
        counts[d] = counts.get(d, 0) + 1
    return counts


def _rehash(keys, vals, cap: int, key_typecode: str):
    """Double an open-addressed key/value table (single-key variant).

    ``'i'`` tables key on one node id, ``'q'`` tables on a packed pair —
    the hash must match the probe sites exactly, or lookups walk the wrong
    chain and silently miss."""
    new_cap = cap * 2
    mask = new_cap - 1
    new_keys = array(key_typecode, [-1]) * new_cap
    new_vals = array("i", [0]) * new_cap
    packed = key_typecode == "q"
    for i in range(cap):
        k = keys[i]
        if k < 0:
            continue
        if packed:
            h = ((k >> _KEY_SHIFT) * _MULT_A + (k & _KEY_MASK) * _MULT_B) & mask
        else:
            h = k * _MULT_A & mask
        while new_keys[h] >= 0:
            h = (h + 1) & mask
        new_keys[h] = k
        new_vals[h] = vals[i]
    return new_keys, new_vals, new_cap
