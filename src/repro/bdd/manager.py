"""Hash-consed BDD/MTBDD node manager.

This module implements the decision-diagram substrate described in section 5.1
of the NV paper.  A single node store represents both plain BDDs (multi-terminal
diagrams whose leaves are the Python booleans ``True``/``False``) and MTBDDs
(leaves are arbitrary hashable Python values).  All nodes are hash-consed, so
structural equality of diagrams is pointer (integer id) equality — the paper
relies on this for the fast "did this node's attribute change?" test in the
simulator, and on leaf sharing for the fault-tolerance analysis.

Nodes are identified by non-negative integers.  Internal nodes carry a
*level* (the variable index tested; lower levels are tested first) and two
children ``lo``/``hi`` for the variable being false/true.  Leaves carry an
arbitrary hashable value and live at the sentinel level ``LEAF_LEVEL``.
"""

from __future__ import annotations

import itertools
import sys
from array import array
from typing import Any, Callable, Iterator

from .. import metrics, obs

_manager_ids = itertools.count(1)


def _live_gauges(m: "BddManager") -> dict[str, int]:
    """Structural gauges sampled by the heartbeat while this manager is
    alive: unique-table and op-cache sizes (the quantities whose silent
    ballooning the ISSUE calls out) plus combined op totals for rate
    derivation."""
    return {
        "bdd.nodes": len(m._level),
        "bdd.unique_entries": len(m._unique),
        "bdd.leaves": len(m._leaf_table),
        "bdd.op_cache_entries": m.op_cache_size(),
        "bdd.op_ops": m.op_hits + m.op_misses,
        "bdd.apply_ops": m.apply_hits + m.apply_misses,
    }

LEAF_LEVEL = 1 << 30

#: Emit a ``bdd.growth`` timeline sample each time the node store grows by
#: this many nodes while tracing (see :mod:`repro.obs`).  The check is one
#: integer comparison per node creation, so it is effectively free.
GROWTH_SAMPLE_INTERVAL = 4096


_KEY_SHIFT = 30  # pack (a, b) node-id pairs into one int key: (a << 30) | b


def snapshot_bytes(arr: array) -> bytes:
    """Stable byte encoding for snapshot triples (explicit little-endian so
    snapshots compare equal across mixed-endian worker fleets)."""
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        arr = array("i", arr)
        arr.byteswap()
    return arr.tobytes()


class BddManager:
    """Owns a shared node store, unique table and operation caches.

    Operation memo tables are split per operation and keyed by packed
    integers (``(a << 30) | b``) rather than ``(op, a, b)`` tuples — the
    tuple allocation and tuple hashing showed up as a measurable fraction of
    simulation time on the fig 13/14 benchmark paths.  Each cache is capped
    at ``op_cache_limit`` entries and simply cleared when full (memo tables
    are semantically transparent, so clearing is always sound);
    :meth:`clear_caches` drops them eagerly without touching the unique
    tables, so hash-consed node identity survives.

    Always-on counters (plain integer attributes, flushed into
    :mod:`repro.perf` by the analysis drivers): ``op_hits``/``op_misses``
    for the boolean operations, ``apply_hits``/``apply_misses`` for the
    MTBDD leaf-function operations.
    """

    def __init__(self, op_cache_limit: int = 1 << 20) -> None:
        # Parallel arrays describing each node.
        self._level: list[int] = []
        self._lo: list[int] = []
        self._hi: list[int] = []
        self._leaf_value: list[Any] = []
        # Hash-consing tables.
        self._unique: dict[tuple[int, int, int], int] = {}
        self._leaf_table: dict[Any, int] = {}
        # Per-operation memo tables with packed-int keys.
        self.op_cache_limit = op_cache_limit
        self._not_cache: dict[int, int] = {}
        self._and_cache: dict[int, int] = {}
        self._xor_cache: dict[int, int] = {}
        self._ite_cache: dict[int, int] = {}
        # Cross-call analysis caches (uncapped: keyed by canonical node ids,
        # bounded by the number of live nodes; cleared by clear_caches).
        self._satcount_memo: dict[int, dict[int, int]] = {}
        self._leaf_groups_memo: dict[int, dict[tuple[int, int],
                                               dict[Any, int]]] = {}
        # Callbacks run by clear_caches so owners of derived caches (e.g.
        # MapContext's frozen-snapshot cache) can drop them in lockstep.
        self._clear_hooks: list[Callable[[], None]] = []
        # Instrumentation (see repro.perf).
        self.op_hits = 0
        self.op_misses = 0
        self.apply_hits = 0
        self.apply_misses = 0
        self._next_growth_sample = GROWTH_SAMPLE_INTERVAL
        # Self-register as a live gauge provider (weakly: the provider
        # drops out when the manager is collected).  No-op unless the
        # metrics registry is enabled at construction time.
        metrics.register_weak_provider(
            f"bdd.manager.{next(_manager_ids)}", self, _live_gauges)
        self.false = self.leaf(False)
        self.true = self.leaf(True)

    def _growth_sample(self) -> None:
        """Periodic unique-table / op-cache growth sample (see module
        :mod:`repro.obs`); called when the node store crosses the next
        sampling threshold."""
        self._next_growth_sample = len(self._level) + GROWTH_SAMPLE_INTERVAL
        if obs.is_enabled():
            obs.event("bdd.growth", nodes=len(self._level),
                      unique_entries=len(self._unique),
                      leaves=len(self._leaf_table),
                      op_cache_entries=self.op_cache_size(),
                      op_cache_hits=self.op_hits,
                      op_cache_misses=self.op_misses)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def leaf(self, value: Any) -> int:
        """Return the hash-consed leaf node carrying ``value``."""
        try:
            node = self._leaf_table.get(value)
        except TypeError as exc:  # unhashable value
            raise TypeError(f"MTBDD leaf values must be hashable, got {value!r}") from exc
        if node is not None:
            return node
        node = len(self._level)
        self._level.append(LEAF_LEVEL)
        self._lo.append(-1)
        self._hi.append(-1)
        self._leaf_value.append(value)
        self._leaf_table[value] = node
        return node

    def mk(self, level: int, lo: int, hi: int) -> int:
        """Return the node testing variable ``level`` with children lo/hi.

        Applies the standard reduction: if both children are equal the test is
        redundant and the child is returned directly.
        """
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is not None:
            return node
        node = len(self._level)
        self._level.append(level)
        self._lo.append(lo)
        self._hi.append(hi)
        self._leaf_value.append(None)
        self._unique[key] = node
        if node >= self._next_growth_sample:
            self._growth_sample()
        return node

    def var(self, level: int) -> int:
        """The BDD for the single variable at ``level``."""
        return self.mk(level, self.false, self.true)

    def nvar(self, level: int) -> int:
        """The BDD for the negation of the variable at ``level``."""
        return self.mk(level, self.true, self.false)

    # ------------------------------------------------------------------
    # Node inspection
    # ------------------------------------------------------------------

    def is_leaf(self, node: int) -> bool:
        return self._level[node] == LEAF_LEVEL

    def leaf_value(self, node: int) -> Any:
        if not self.is_leaf(node):
            raise ValueError(f"node {node} is not a leaf")
        return self._leaf_value[node]

    def level(self, node: int) -> int:
        return self._level[node]

    def lo(self, node: int) -> int:
        return self._lo[node]

    def hi(self, node: int) -> int:
        return self._hi[node]

    def node_count(self, root: int) -> int:
        """Number of distinct nodes (incl. leaves) reachable from ``root``."""
        seen: set[int] = set()
        stack = [root]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if not self.is_leaf(n):
                stack.append(self._lo[n])
                stack.append(self._hi[n])
        return len(seen)

    def size(self) -> int:
        """Total number of nodes allocated in this manager."""
        return len(self._level)

    # ------------------------------------------------------------------
    # Boolean operations (on diagrams whose leaves are True/False)
    # ------------------------------------------------------------------

    def bnot(self, a: int) -> int:
        cached = self._not_cache.get(a)
        if cached is not None:
            self.op_hits += 1
            return cached
        self.op_misses += 1
        if self.is_leaf(a):
            result = self.leaf(not self._leaf_value[a])
        else:
            result = self.mk(
                self._level[a], self.bnot(self._lo[a]), self.bnot(self._hi[a])
            )
        cache = self._not_cache
        if len(cache) >= self.op_cache_limit:
            cache.clear()
        cache[a] = result
        return result

    def band(self, a: int, b: int) -> int:
        if a == b:
            return a
        if a == self.false or b == self.false:
            return self.false
        if a == self.true:
            return b
        if b == self.true:
            return a
        if a > b:
            a, b = b, a
        key = (a << _KEY_SHIFT) | b
        cached = self._and_cache.get(key)
        if cached is not None:
            self.op_hits += 1
            return cached
        self.op_misses += 1
        la, lb = self._level[a], self._level[b]
        lvl = min(la, lb)
        a0, a1 = (self._lo[a], self._hi[a]) if la == lvl else (a, a)
        b0, b1 = (self._lo[b], self._hi[b]) if lb == lvl else (b, b)
        result = self.mk(lvl, self.band(a0, b0), self.band(a1, b1))
        cache = self._and_cache
        if len(cache) >= self.op_cache_limit:
            cache.clear()
        cache[key] = result
        return result

    def bor(self, a: int, b: int) -> int:
        return self.bnot(self.band(self.bnot(a), self.bnot(b)))

    def bxor(self, a: int, b: int) -> int:
        if a == b:
            return self.false
        if a == self.false:
            return b
        if b == self.false:
            return a
        if a == self.true:
            return self.bnot(b)
        if b == self.true:
            return self.bnot(a)
        if a > b:
            a, b = b, a
        key = (a << _KEY_SHIFT) | b
        cached = self._xor_cache.get(key)
        if cached is not None:
            self.op_hits += 1
            return cached
        self.op_misses += 1
        la, lb = self._level[a], self._level[b]
        lvl = min(la, lb)
        a0, a1 = (self._lo[a], self._hi[a]) if la == lvl else (a, a)
        b0, b1 = (self._lo[b], self._hi[b]) if lb == lvl else (b, b)
        result = self.mk(lvl, self.bxor(a0, b0), self.bxor(a1, b1))
        cache = self._xor_cache
        if len(cache) >= self.op_cache_limit:
            cache.clear()
        cache[key] = result
        return result

    def bimplies(self, a: int, b: int) -> int:
        return self.bor(self.bnot(a), b)

    def biff(self, a: int, b: int) -> int:
        return self.bnot(self.bxor(a, b))

    def bite(self, c: int, t: int, e: int) -> int:
        """If-then-else over boolean diagrams."""
        if c == self.true:
            return t
        if c == self.false:
            return e
        if t == e:
            return t
        key = (((c << _KEY_SHIFT) | t) << _KEY_SHIFT) | e
        cached = self._ite_cache.get(key)
        if cached is not None:
            self.op_hits += 1
            return cached
        self.op_misses += 1
        lvl = min(self._level[c], self._level[t], self._level[e])
        c0, c1 = self._cof(c, lvl)
        t0, t1 = self._cof(t, lvl)
        e0, e1 = self._cof(e, lvl)
        result = self.mk(lvl, self.bite(c0, t0, e0), self.bite(c1, t1, e1))
        cache = self._ite_cache
        if len(cache) >= self.op_cache_limit:
            cache.clear()
        cache[key] = result
        return result

    def _cof(self, node: int, lvl: int) -> tuple[int, int]:
        """Cofactors of ``node`` with respect to the variable at ``lvl``."""
        if self._level[node] == lvl:
            return self._lo[node], self._hi[node]
        return node, node

    # ------------------------------------------------------------------
    # MTBDD operations
    # ------------------------------------------------------------------

    def apply1(self, fn: Callable[[Any], Any], root: int,
               memo: dict[int, int] | None = None) -> int:
        """Map ``fn`` over every leaf of ``root``.

        Thanks to leaf sharing, ``fn`` is invoked once per *distinct* leaf.
        A caller-provided ``memo`` (keyed by node id) lets repeated calls
        share work (the paper caches diagram operations across simulation
        steps).  Iterative: an explicit work stack replaces recursion, so
        deep diagrams (fat-tree scenario keys) neither pay Python call
        overhead per node nor hit the recursion limit.
        """
        if memo is None:
            memo = {}
        cached = memo.get(root)
        if cached is not None:
            self.apply_hits += 1
            return cached
        level = self._level
        lo = self._lo
        hi = self._hi
        leaf_value = self._leaf_value
        memo_get = memo.get
        hits = 0
        misses = 0
        # Frames: (0, node) = expand, (1, node) = combine children results.
        stack: list[tuple[int, int]] = [(0, root)]
        results: list[int] = []
        push = stack.append
        emit = results.append
        while stack:
            tag, n = stack.pop()
            if tag == 0:
                r = memo_get(n)
                if r is not None:
                    hits += 1
                    emit(r)
                    continue
                misses += 1
                if level[n] == LEAF_LEVEL:
                    r = self.leaf(fn(leaf_value[n]))
                    memo[n] = r
                    emit(r)
                else:
                    push((1, n))
                    push((0, hi[n]))
                    push((0, lo[n]))
            else:
                r_hi = results.pop()
                r_lo = results.pop()
                r = self.mk(level[n], r_lo, r_hi)
                memo[n] = r
                emit(r)
        self.apply_hits += hits
        self.apply_misses += misses
        return results[0]

    def apply2(self, fn: Callable[[Any, Any], Any], a: int, b: int,
               memo: dict[int, int] | None = None) -> int:
        """Combine two diagrams leaf-wise with the binary function ``fn``.

        ``memo`` is keyed by the packed pair ``(x << 30) | y``; treat it as
        opaque and only share it between calls with the same ``fn``.
        """
        if memo is None:
            memo = {}
        key0 = (a << _KEY_SHIFT) | b
        cached = memo.get(key0)
        if cached is not None:
            self.apply_hits += 1
            return cached
        level = self._level
        lo = self._lo
        hi = self._hi
        leaf_value = self._leaf_value
        memo_get = memo.get
        hits = 0
        misses = 0
        # Frames: (0, x, y) = expand, (1, key, lvl) = combine children.
        stack: list[tuple[int, int, int]] = [(0, a, b)]
        results: list[int] = []
        push = stack.append
        emit = results.append
        while stack:
            tag, f1, f2 = stack.pop()
            if tag == 0:
                key = (f1 << _KEY_SHIFT) | f2
                r = memo_get(key)
                if r is not None:
                    hits += 1
                    emit(r)
                    continue
                misses += 1
                lx = level[f1]
                ly = level[f2]
                if lx == LEAF_LEVEL and ly == LEAF_LEVEL:
                    r = self.leaf(fn(leaf_value[f1], leaf_value[f2]))
                    memo[key] = r
                    emit(r)
                else:
                    lvl = lx if lx < ly else ly
                    if lx == lvl:
                        x0 = lo[f1]
                        x1 = hi[f1]
                    else:
                        x0 = x1 = f1
                    if ly == lvl:
                        y0 = lo[f2]
                        y1 = hi[f2]
                    else:
                        y0 = y1 = f2
                    push((1, key, lvl))
                    push((0, x1, y1))
                    push((0, x0, y0))
            else:
                r_hi = results.pop()
                r_lo = results.pop()
                r = self.mk(f2, r_lo, r_hi)
                memo[f1] = r
                emit(r)
        self.apply_hits += hits
        self.apply_misses += misses
        return results[0]

    def map_ite(self, pred: int, fn_true: Callable[[Any], Any],
                fn_false: Callable[[Any], Any], root: int,
                memo: dict[int, int] | None = None,
                memo_true: dict[int, int] | None = None,
                memo_false: dict[int, int] | None = None) -> int:
        """The NV ``mapIte`` primitive (fig 11 of the paper).

        ``pred`` is a boolean BDD over the map's key bits; leaves of ``root``
        reached under keys satisfying ``pred`` are mapped with ``fn_true``,
        the rest with ``fn_false``.  Iterative, like :meth:`apply2`; the
        optional ``memo`` (packed ``(pred << 30) | node`` keys) plus the two
        branch memos (``apply1`` keying) may be shared between calls with the
        same function pair — route policies are re-applied every simulation
        round, so sharing turns repeat rounds into cache hits.
        """
        if memo_true is None:
            memo_true = {}
        if memo_false is None:
            memo_false = {}
        if memo is None:
            memo = {}
        level = self._level
        lo = self._lo
        hi = self._hi
        true = self.true
        false = self.false
        memo_get = memo.get
        # Frames: (0, p, m) = expand, (1, key, lvl) = combine children.
        stack: list[tuple[int, int, int]] = [(0, pred, root)]
        results: list[int] = []
        push = stack.append
        emit = results.append
        while stack:
            tag, f1, f2 = stack.pop()
            if tag == 0:
                key = (f1 << _KEY_SHIFT) | f2
                r = memo_get(key)
                if r is not None:
                    emit(r)
                    continue
                if f1 == true:
                    r = self.apply1(fn_true, f2, memo_true)
                    memo[key] = r
                    emit(r)
                elif f1 == false:
                    r = self.apply1(fn_false, f2, memo_false)
                    memo[key] = r
                    emit(r)
                else:
                    lp = level[f1]
                    lm = level[f2]
                    lvl = lp if lp < lm else lm
                    if lp == lvl:
                        p0 = lo[f1]
                        p1 = hi[f1]
                    else:
                        p0 = p1 = f1
                    if lm == lvl:
                        m0 = lo[f2]
                        m1 = hi[f2]
                    else:
                        m0 = m1 = f2
                    push((1, key, lvl))
                    push((0, p1, m1))
                    push((0, p0, m0))
            else:
                r_hi = results.pop()
                r_lo = results.pop()
                r = self.mk(f2, r_lo, r_hi)
                memo[f1] = r
                emit(r)
        return results[0]

    # ------------------------------------------------------------------
    # Multi-root batch API (scalar loops — the executable spec for the
    # arena engine's fused frontier passes; see ArenaBddManager)
    # ------------------------------------------------------------------

    def apply1_many(self, items: list) -> list[int]:
        """Batched :meth:`apply1` over ``(fn, root, memo)`` tuples.  The
        object engine runs them sequentially; results align with items."""
        return [self.apply1(fn, root, memo) for fn, root, memo in items]

    def apply2_many(self, items: list) -> list[int]:
        """Batched :meth:`apply2` over ``(fn, a, b, memo)`` tuples.  Items
        sharing a ``memo`` dict must share ``fn``."""
        return [self.apply2(fn, a, b, memo) for fn, a, b, memo in items]

    def map_ite_many(self, items: list) -> list[int]:
        """Batched :meth:`map_ite` over ``(pred, fn_true, fn_false, root,
        memo, memo_true, memo_false)`` tuples."""
        return [self.map_ite(p, ft, ff, r, m, mt, mf)
                for p, ft, ff, r, m, mt, mf in items]

    def restrict_eval(self, root: int, assignment: Callable[[int], bool]) -> Any:
        """Evaluate a diagram under a total assignment of variables.

        ``assignment`` maps a variable level to its boolean value.  Returns
        the leaf value reached.
        """
        n = root
        while self._level[n] != LEAF_LEVEL:
            n = self._hi[n] if assignment(self._level[n]) else self._lo[n]
        return self._leaf_value[n]

    def set_path(self, root: int, bits: list[tuple[int, bool]], value_leaf: int) -> int:
        """Return a diagram equal to ``root`` except that the single path
        described by ``bits`` (a list of (level, bit) sorted by level) leads to
        ``value_leaf``.  Used to implement map ``set`` with a constant key."""

        def rec(n: int, i: int) -> int:
            if i == len(bits):
                return value_leaf
            lvl, bit = bits[i]
            nl = self._level[n]
            if nl == lvl:
                lo, hi = self._lo[n], self._hi[n]
            elif nl > lvl:  # variable absent: both children are n itself
                lo, hi = n, n
            else:
                raise ValueError("set_path bits must cover all levels above the map's leaves")
            if bit:
                return self.mk(lvl, lo, rec(hi, i + 1))
            return self.mk(lvl, rec(lo, i + 1), hi)

        return rec(root, 0)

    def get_path(self, root: int, bits: dict[int, bool]) -> Any:
        """Follow a concrete path (level -> bit) and return the leaf value."""
        n = root
        while self._level[n] != LEAF_LEVEL:
            lvl = self._level[n]
            n = self._hi[n] if bits.get(lvl, False) else self._lo[n]
        return self._leaf_value[n]

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------

    def leaves(self, root: int) -> list[Any]:
        """Distinct leaf values reachable from ``root``."""
        seen: set[int] = set()
        out: list[Any] = []
        stack = [root]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if self._level[n] == LEAF_LEVEL:
                out.append(self._leaf_value[n])
            else:
                stack.append(self._hi[n])
                stack.append(self._lo[n])
        return out

    def sat_count(self, root: int, num_vars: int) -> int:
        """Number of assignments (over ``num_vars`` variables at levels
        0..num_vars-1) reaching a leaf with a truthy value."""
        return self.sat_count_from(root, 0, num_vars)

    def sat_count_from(self, root: int, lvl: int, num_vars: int) -> int:
        """Like :meth:`sat_count` but over variables ``lvl..num_vars-1``.

        ``root`` must not test any variable below ``lvl``.

        Per-node counts are cached across calls (``_satcount_memo``, keyed
        by ``num_vars``): ``leaf_groups`` re-counts the same domain regions
        for every map it is asked about.
        """
        memo = self._satcount_memo.setdefault(num_vars, {})

        def rec(n: int) -> int:
            """Count over variables strictly below this node's own level."""
            cached = memo.get(n)
            if cached is not None:
                return cached
            if self._level[n] == LEAF_LEVEL:
                result = 1 if self._leaf_value[n] else 0
            else:
                nl = self._level[n]
                lo, hi = self._lo[n], self._hi[n]
                result = (rec(lo) << self._skip(lo, nl, num_vars)) + (
                    rec(hi) << self._skip(hi, nl, num_vars)
                )
            memo[n] = result
            return result

        top = self._level[root]
        start = num_vars if top == LEAF_LEVEL else top
        if start < lvl:
            raise ValueError("diagram tests variables above the requested range")
        return rec(root) << (start - lvl)

    def _skip(self, child: int, parent_level: int, num_vars: int) -> int:
        """Variables skipped between ``parent_level`` and ``child``'s level."""
        cl = self._level[child]
        eff = num_vars if cl == LEAF_LEVEL else cl
        return eff - (parent_level + 1)

    def leaf_groups(self, root: int, num_vars: int,
                    domain: int | None = None) -> dict[Any, int]:
        """Map each distinct leaf value to the number of keys reaching it.

        ``domain`` optionally restricts counting to keys satisfying a boolean
        BDD (e.g. only valid edge encodings).  This realises the paper's
        observation that MTBDDs dynamically discover failure-equivalence
        classes: each leaf is one class, and its count is the class size.
        """
        if domain is None:
            domain = self.true
        # The (map node, domain node) product memo is shared across calls:
        # an analysis reports every network node's map against one domain,
        # and converged maps share most of their structure.  Entries are
        # never mutated after insertion, so cross-call reuse is safe.
        memo = self._leaf_groups_memo.setdefault(num_vars, {})

        def top(n: int, d: int) -> int:
            t = min(self._level[n], self._level[d])
            return num_vars if t == LEAF_LEVEL else t

        def rec(n: int, d: int) -> dict[Any, int]:
            """Counts over variables ``top(n, d)..num_vars-1``."""
            if d == self.false:
                return {}
            key = (n, d)
            cached = memo.get(key)
            if cached is not None:
                return cached
            if self._level[n] == LEAF_LEVEL:
                cnt = self.sat_count_from(d, top(n, d), num_vars)
                result = {self._leaf_value[n]: cnt} if cnt else {}
            else:
                lvl = top(n, d)
                n0, n1 = self._cof(n, lvl)
                d0, d1 = self._cof(d, lvl)
                result = {}
                for nn, dd in ((n0, d0), (n1, d1)):
                    sub = rec(nn, dd)
                    scale = top(nn, dd) - (lvl + 1)
                    for value, cnt in sub.items():
                        result[value] = result.get(value, 0) + (cnt << scale)
            memo[key] = result
            return result

        base = rec(root, domain)
        scale = top(root, domain)
        return {value: cnt << scale for value, cnt in base.items()}

    def any_sat(self, root: int, num_vars: int) -> dict[int, bool] | None:
        """One satisfying assignment (all ``num_vars`` variables assigned) of
        a boolean diagram, or None if unsatisfiable."""
        if root == self.false:
            return None
        assignment: dict[int, bool] = {}
        n = root
        while self._level[n] != LEAF_LEVEL:
            lvl = self._level[n]
            if self._lo[n] != self.false:
                assignment[lvl] = False
                n = self._lo[n]
            else:
                assignment[lvl] = True
                n = self._hi[n]
        if not self._leaf_value[n]:
            return None
        for lvl in range(num_vars):
            assignment.setdefault(lvl, False)
        return assignment

    def iter_paths(self, root: int, num_vars: int) -> Iterator[tuple[dict[int, bool], Any]]:
        """Yield (partial assignment, leaf value) for every path in ``root``.

        The assignment only mentions the variables actually tested on the
        path; unmentioned variables are don't-cares.
        """
        path: dict[int, bool] = {}

        def rec(n: int) -> Iterator[tuple[dict[int, bool], Any]]:
            if self._level[n] == LEAF_LEVEL:
                yield dict(path), self._leaf_value[n]
                return
            lvl = self._level[n]
            path[lvl] = False
            yield from rec(self._lo[n])
            path[lvl] = True
            yield from rec(self._hi[n])
            del path[lvl]

        yield from rec(root)

    def snapshot(self, root: int) -> tuple[bytes, list[Any]]:
        """Canonical flat snapshot of the sub-DAG rooted at ``root``.

        Nodes are renumbered in DFS preorder (lo before hi, root = 0) into
        one ``array('i')`` of ``(var, lo, hi)`` triples; leaves store ``-1``
        in var and an index into the returned leaf list.  Equal diagrams —
        across engines and across processes — produce byte-identical blobs,
        so :class:`~repro.eval.maps.FrozenMap` equality stays structural.
        """
        level_a, lo_a, hi_a = self._level, self._lo, self._hi
        leaf_value = self._leaf_value
        out = array("i")
        leaves: list[Any] = []
        renum: dict[int, int] = {}

        def rec(n: int) -> int:
            new = renum.get(n)
            if new is not None:
                return new
            new = len(renum)
            renum[n] = new
            base = len(out)
            out.extend((0, 0, 0))  # placeholder triple at slot `new`
            if level_a[n] == LEAF_LEVEL:
                out[base] = -1
                out[base + 1] = len(leaves)
                out[base + 2] = -1
                leaves.append(leaf_value[n])
            else:
                out[base] = level_a[n]
                out[base + 1] = rec(lo_a[n])
                out[base + 2] = rec(hi_a[n])
            return new

        rec(root)
        return snapshot_bytes(out), leaves

    def clear_caches(self) -> None:
        """Drop operation memo tables.

        The unique and leaf tables are kept, so hash-consed node identity is
        unaffected: any diagram built before the call is still pointer-equal
        to the same diagram rebuilt after it.
        """
        self._not_cache.clear()
        self._and_cache.clear()
        self._xor_cache.clear()
        self._ite_cache.clear()
        self._satcount_memo.clear()
        self._leaf_groups_memo.clear()
        for hook in self._clear_hooks:
            hook()

    def register_clear_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` whenever :meth:`clear_caches` drops the memo tables
        (used by owners of caches derived from this manager's nodes)."""
        self._clear_hooks.append(hook)

    def op_cache_size(self) -> int:
        """Total entries currently held across the operation memo tables."""
        return (len(self._not_cache) + len(self._and_cache)
                + len(self._xor_cache) + len(self._ite_cache))

    def stats(self) -> dict[str, int]:
        """Instrumentation snapshot (see :mod:`repro.perf` naming rules)."""
        return {
            "nodes": len(self._level),
            "unique_entries": len(self._unique),
            "leaves": len(self._leaf_table),
            "op_cache_entries": self.op_cache_size(),
            "op_cache_hits": self.op_hits,
            "op_cache_misses": self.op_misses,
            "apply_cache_hits": self.apply_hits,
            "apply_cache_misses": self.apply_misses,
        }

    def telemetry(self) -> tuple[dict[str, int], dict[str, Any]]:
        """``(counters, histograms)`` for :func:`repro.telemetry.flush_manager`.

        The object engine's tables are CPython dicts, whose probing is
        invisible from Python — the comparable health signal is the *size*
        profile of each table (one observation per table into a shared
        ``table_entries`` histogram) plus per-table entry counters, so an
        arena-vs-object run diff lines the two engines' table shapes up."""
        sizes = {
            "table_unique_entries": len(self._unique),
            "table_leaf_entries": len(self._leaf_table),
            "table_op_not_entries": len(self._not_cache),
            "table_op_and_entries": len(self._and_cache),
            "table_op_xor_entries": len(self._xor_cache),
            "table_op_ite_entries": len(self._ite_cache),
        }
        hist = metrics.Histogram.from_values(
            v for v in sizes.values() if v)
        return dict(sizes), {"table_entries": hist}
