"""Hash-consed BDD/MTBDD node manager.

This module implements the decision-diagram substrate described in section 5.1
of the NV paper.  A single node store represents both plain BDDs (multi-terminal
diagrams whose leaves are the Python booleans ``True``/``False``) and MTBDDs
(leaves are arbitrary hashable Python values).  All nodes are hash-consed, so
structural equality of diagrams is pointer (integer id) equality — the paper
relies on this for the fast "did this node's attribute change?" test in the
simulator, and on leaf sharing for the fault-tolerance analysis.

Nodes are identified by non-negative integers.  Internal nodes carry a
*level* (the variable index tested; lower levels are tested first) and two
children ``lo``/``hi`` for the variable being false/true.  Leaves carry an
arbitrary hashable value and live at the sentinel level ``LEAF_LEVEL``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

LEAF_LEVEL = 1 << 30


class BddManager:
    """Owns a shared node store, unique table and operation caches."""

    def __init__(self) -> None:
        # Parallel arrays describing each node.
        self._level: list[int] = []
        self._lo: list[int] = []
        self._hi: list[int] = []
        self._leaf_value: list[Any] = []
        # Hash-consing tables.
        self._unique: dict[tuple[int, int, int], int] = {}
        self._leaf_table: dict[Any, int] = {}
        # Memo tables for the structural boolean operations.
        self._op_cache: dict[tuple[Any, ...], int] = {}
        self.false = self.leaf(False)
        self.true = self.leaf(True)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def leaf(self, value: Any) -> int:
        """Return the hash-consed leaf node carrying ``value``."""
        try:
            node = self._leaf_table.get(value)
        except TypeError as exc:  # unhashable value
            raise TypeError(f"MTBDD leaf values must be hashable, got {value!r}") from exc
        if node is not None:
            return node
        node = len(self._level)
        self._level.append(LEAF_LEVEL)
        self._lo.append(-1)
        self._hi.append(-1)
        self._leaf_value.append(value)
        self._leaf_table[value] = node
        return node

    def mk(self, level: int, lo: int, hi: int) -> int:
        """Return the node testing variable ``level`` with children lo/hi.

        Applies the standard reduction: if both children are equal the test is
        redundant and the child is returned directly.
        """
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is not None:
            return node
        node = len(self._level)
        self._level.append(level)
        self._lo.append(lo)
        self._hi.append(hi)
        self._leaf_value.append(None)
        self._unique[key] = node
        return node

    def var(self, level: int) -> int:
        """The BDD for the single variable at ``level``."""
        return self.mk(level, self.false, self.true)

    def nvar(self, level: int) -> int:
        """The BDD for the negation of the variable at ``level``."""
        return self.mk(level, self.true, self.false)

    # ------------------------------------------------------------------
    # Node inspection
    # ------------------------------------------------------------------

    def is_leaf(self, node: int) -> bool:
        return self._level[node] == LEAF_LEVEL

    def leaf_value(self, node: int) -> Any:
        if not self.is_leaf(node):
            raise ValueError(f"node {node} is not a leaf")
        return self._leaf_value[node]

    def level(self, node: int) -> int:
        return self._level[node]

    def lo(self, node: int) -> int:
        return self._lo[node]

    def hi(self, node: int) -> int:
        return self._hi[node]

    def node_count(self, root: int) -> int:
        """Number of distinct nodes (incl. leaves) reachable from ``root``."""
        seen: set[int] = set()
        stack = [root]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if not self.is_leaf(n):
                stack.append(self._lo[n])
                stack.append(self._hi[n])
        return len(seen)

    def size(self) -> int:
        """Total number of nodes allocated in this manager."""
        return len(self._level)

    # ------------------------------------------------------------------
    # Boolean operations (on diagrams whose leaves are True/False)
    # ------------------------------------------------------------------

    def bnot(self, a: int) -> int:
        key = ("not", a)
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        if self.is_leaf(a):
            result = self.leaf(not self._leaf_value[a])
        else:
            result = self.mk(
                self._level[a], self.bnot(self._lo[a]), self.bnot(self._hi[a])
            )
        self._op_cache[key] = result
        return result

    def band(self, a: int, b: int) -> int:
        if a == b:
            return a
        if a == self.false or b == self.false:
            return self.false
        if a == self.true:
            return b
        if b == self.true:
            return a
        if a > b:
            a, b = b, a
        key = ("and", a, b)
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        la, lb = self._level[a], self._level[b]
        lvl = min(la, lb)
        a0, a1 = (self._lo[a], self._hi[a]) if la == lvl else (a, a)
        b0, b1 = (self._lo[b], self._hi[b]) if lb == lvl else (b, b)
        result = self.mk(lvl, self.band(a0, b0), self.band(a1, b1))
        self._op_cache[key] = result
        return result

    def bor(self, a: int, b: int) -> int:
        return self.bnot(self.band(self.bnot(a), self.bnot(b)))

    def bxor(self, a: int, b: int) -> int:
        if a == b:
            return self.false
        if a == self.false:
            return b
        if b == self.false:
            return a
        if a == self.true:
            return self.bnot(b)
        if b == self.true:
            return self.bnot(a)
        if a > b:
            a, b = b, a
        key = ("xor", a, b)
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        la, lb = self._level[a], self._level[b]
        lvl = min(la, lb)
        a0, a1 = (self._lo[a], self._hi[a]) if la == lvl else (a, a)
        b0, b1 = (self._lo[b], self._hi[b]) if lb == lvl else (b, b)
        result = self.mk(lvl, self.bxor(a0, b0), self.bxor(a1, b1))
        self._op_cache[key] = result
        return result

    def bimplies(self, a: int, b: int) -> int:
        return self.bor(self.bnot(a), b)

    def biff(self, a: int, b: int) -> int:
        return self.bnot(self.bxor(a, b))

    def bite(self, c: int, t: int, e: int) -> int:
        """If-then-else over boolean diagrams."""
        if c == self.true:
            return t
        if c == self.false:
            return e
        if t == e:
            return t
        key = ("ite", c, t, e)
        cached = self._op_cache.get(key)
        if cached is not None:
            return cached
        lvl = min(self._level[c], self._level[t], self._level[e])
        c0, c1 = self._cof(c, lvl)
        t0, t1 = self._cof(t, lvl)
        e0, e1 = self._cof(e, lvl)
        result = self.mk(lvl, self.bite(c0, t0, e0), self.bite(c1, t1, e1))
        self._op_cache[key] = result
        return result

    def _cof(self, node: int, lvl: int) -> tuple[int, int]:
        """Cofactors of ``node`` with respect to the variable at ``lvl``."""
        if self._level[node] == lvl:
            return self._lo[node], self._hi[node]
        return node, node

    # ------------------------------------------------------------------
    # MTBDD operations
    # ------------------------------------------------------------------

    def apply1(self, fn: Callable[[Any], Any], root: int,
               memo: dict[int, int] | None = None) -> int:
        """Map ``fn`` over every leaf of ``root``.

        Thanks to leaf sharing, ``fn`` is invoked once per *distinct* leaf.
        A caller-provided ``memo`` lets repeated calls share work (the paper
        caches diagram operations across simulation steps).
        """
        if memo is None:
            memo = {}
        leaf_memo: dict[int, int] = {}

        def rec(n: int) -> int:
            cached = memo.get(n)
            if cached is not None:
                return cached
            if self._level[n] == LEAF_LEVEL:
                result = leaf_memo.get(n)
                if result is None:
                    result = self.leaf(fn(self._leaf_value[n]))
                    leaf_memo[n] = result
            else:
                result = self.mk(self._level[n], rec(self._lo[n]), rec(self._hi[n]))
            memo[n] = result
            return result

        return rec(root)

    def apply2(self, fn: Callable[[Any, Any], Any], a: int, b: int,
               memo: dict[tuple[int, int], int] | None = None) -> int:
        """Combine two diagrams leaf-wise with the binary function ``fn``."""
        if memo is None:
            memo = {}

        def rec(x: int, y: int) -> int:
            key = (x, y)
            cached = memo.get(key)
            if cached is not None:
                return cached
            lx, ly = self._level[x], self._level[y]
            if lx == LEAF_LEVEL and ly == LEAF_LEVEL:
                result = self.leaf(fn(self._leaf_value[x], self._leaf_value[y]))
            else:
                lvl = min(lx, ly)
                x0, x1 = self._cof(x, lvl)
                y0, y1 = self._cof(y, lvl)
                result = self.mk(lvl, rec(x0, y0), rec(x1, y1))
            memo[key] = result
            return result

        return rec(a, b)

    def map_ite(self, pred: int, fn_true: Callable[[Any], Any],
                fn_false: Callable[[Any], Any], root: int) -> int:
        """The NV ``mapIte`` primitive (fig 11 of the paper).

        ``pred`` is a boolean BDD over the map's key bits; leaves of ``root``
        reached under keys satisfying ``pred`` are mapped with ``fn_true``,
        the rest with ``fn_false``.
        """
        memo_true: dict[int, int] = {}
        memo_false: dict[int, int] = {}
        memo: dict[tuple[int, int], int] = {}

        def rec(p: int, m: int) -> int:
            key = (p, m)
            cached = memo.get(key)
            if cached is not None:
                return cached
            if p == self.true:
                result = self.apply1(fn_true, m, memo_true)
            elif p == self.false:
                result = self.apply1(fn_false, m, memo_false)
            else:
                lvl = min(self._level[p], self._level[m])
                p0, p1 = self._cof(p, lvl)
                m0, m1 = self._cof(m, lvl)
                result = self.mk(lvl, rec(p0, m0), rec(p1, m1))
            memo[key] = result
            return result

        return rec(pred, root)

    def restrict_eval(self, root: int, assignment: Callable[[int], bool]) -> Any:
        """Evaluate a diagram under a total assignment of variables.

        ``assignment`` maps a variable level to its boolean value.  Returns
        the leaf value reached.
        """
        n = root
        while self._level[n] != LEAF_LEVEL:
            n = self._hi[n] if assignment(self._level[n]) else self._lo[n]
        return self._leaf_value[n]

    def set_path(self, root: int, bits: list[tuple[int, bool]], value_leaf: int) -> int:
        """Return a diagram equal to ``root`` except that the single path
        described by ``bits`` (a list of (level, bit) sorted by level) leads to
        ``value_leaf``.  Used to implement map ``set`` with a constant key."""

        def rec(n: int, i: int) -> int:
            if i == len(bits):
                return value_leaf
            lvl, bit = bits[i]
            nl = self._level[n]
            if nl == lvl:
                lo, hi = self._lo[n], self._hi[n]
            elif nl > lvl:  # variable absent: both children are n itself
                lo, hi = n, n
            else:
                raise ValueError("set_path bits must cover all levels above the map's leaves")
            if bit:
                return self.mk(lvl, lo, rec(hi, i + 1))
            return self.mk(lvl, rec(lo, i + 1), hi)

        return rec(root, 0)

    def get_path(self, root: int, bits: dict[int, bool]) -> Any:
        """Follow a concrete path (level -> bit) and return the leaf value."""
        n = root
        while self._level[n] != LEAF_LEVEL:
            lvl = self._level[n]
            n = self._hi[n] if bits.get(lvl, False) else self._lo[n]
        return self._leaf_value[n]

    # ------------------------------------------------------------------
    # Analysis helpers
    # ------------------------------------------------------------------

    def leaves(self, root: int) -> list[Any]:
        """Distinct leaf values reachable from ``root``."""
        seen: set[int] = set()
        out: list[Any] = []
        stack = [root]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if self._level[n] == LEAF_LEVEL:
                out.append(self._leaf_value[n])
            else:
                stack.append(self._hi[n])
                stack.append(self._lo[n])
        return out

    def sat_count(self, root: int, num_vars: int) -> int:
        """Number of assignments (over ``num_vars`` variables at levels
        0..num_vars-1) reaching a leaf with a truthy value."""
        return self.sat_count_from(root, 0, num_vars)

    def sat_count_from(self, root: int, lvl: int, num_vars: int) -> int:
        """Like :meth:`sat_count` but over variables ``lvl..num_vars-1``.

        ``root`` must not test any variable below ``lvl``.
        """
        memo: dict[int, int] = {}

        def rec(n: int) -> int:
            """Count over variables strictly below this node's own level."""
            cached = memo.get(n)
            if cached is not None:
                return cached
            if self._level[n] == LEAF_LEVEL:
                result = 1 if self._leaf_value[n] else 0
            else:
                nl = self._level[n]
                lo, hi = self._lo[n], self._hi[n]
                result = (rec(lo) << self._skip(lo, nl, num_vars)) + (
                    rec(hi) << self._skip(hi, nl, num_vars)
                )
            memo[n] = result
            return result

        top = self._level[root]
        start = num_vars if top == LEAF_LEVEL else top
        if start < lvl:
            raise ValueError("diagram tests variables above the requested range")
        return rec(root) << (start - lvl)

    def _skip(self, child: int, parent_level: int, num_vars: int) -> int:
        """Variables skipped between ``parent_level`` and ``child``'s level."""
        cl = self._level[child]
        eff = num_vars if cl == LEAF_LEVEL else cl
        return eff - (parent_level + 1)

    def leaf_groups(self, root: int, num_vars: int,
                    domain: int | None = None) -> dict[Any, int]:
        """Map each distinct leaf value to the number of keys reaching it.

        ``domain`` optionally restricts counting to keys satisfying a boolean
        BDD (e.g. only valid edge encodings).  This realises the paper's
        observation that MTBDDs dynamically discover failure-equivalence
        classes: each leaf is one class, and its count is the class size.
        """
        if domain is None:
            domain = self.true
        memo: dict[tuple[int, int], dict[Any, int]] = {}

        def top(n: int, d: int) -> int:
            t = min(self._level[n], self._level[d])
            return num_vars if t == LEAF_LEVEL else t

        def rec(n: int, d: int) -> dict[Any, int]:
            """Counts over variables ``top(n, d)..num_vars-1``."""
            if d == self.false:
                return {}
            key = (n, d)
            cached = memo.get(key)
            if cached is not None:
                return cached
            if self._level[n] == LEAF_LEVEL:
                cnt = self.sat_count_from(d, top(n, d), num_vars)
                result = {self._leaf_value[n]: cnt} if cnt else {}
            else:
                lvl = top(n, d)
                n0, n1 = self._cof(n, lvl)
                d0, d1 = self._cof(d, lvl)
                result = {}
                for nn, dd in ((n0, d0), (n1, d1)):
                    sub = rec(nn, dd)
                    scale = top(nn, dd) - (lvl + 1)
                    for value, cnt in sub.items():
                        result[value] = result.get(value, 0) + (cnt << scale)
            memo[key] = result
            return result

        base = rec(root, domain)
        scale = top(root, domain)
        return {value: cnt << scale for value, cnt in base.items()}

    def any_sat(self, root: int, num_vars: int) -> dict[int, bool] | None:
        """One satisfying assignment (all ``num_vars`` variables assigned) of
        a boolean diagram, or None if unsatisfiable."""
        if root == self.false:
            return None
        assignment: dict[int, bool] = {}
        n = root
        while self._level[n] != LEAF_LEVEL:
            lvl = self._level[n]
            if self._lo[n] != self.false:
                assignment[lvl] = False
                n = self._lo[n]
            else:
                assignment[lvl] = True
                n = self._hi[n]
        if not self._leaf_value[n]:
            return None
        for lvl in range(num_vars):
            assignment.setdefault(lvl, False)
        return assignment

    def iter_paths(self, root: int, num_vars: int) -> Iterator[tuple[dict[int, bool], Any]]:
        """Yield (partial assignment, leaf value) for every path in ``root``.

        The assignment only mentions the variables actually tested on the
        path; unmentioned variables are don't-cares.
        """
        path: dict[int, bool] = {}

        def rec(n: int) -> Iterator[tuple[dict[int, bool], Any]]:
            if self._level[n] == LEAF_LEVEL:
                yield dict(path), self._leaf_value[n]
                return
            lvl = self._level[n]
            path[lvl] = False
            yield from rec(self._lo[n])
            path[lvl] = True
            yield from rec(self._hi[n])
            del path[lvl]

        yield from rec(root)

    def clear_caches(self) -> None:
        """Drop operation memo tables (unique tables are kept)."""
        self._op_cache.clear()
