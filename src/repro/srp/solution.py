"""Solutions (stable states) of a routing problem."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..eval.values import value_repr


@dataclass
class Solution:
    """A stable labelling ``L`` of the network (paper §2.5), plus run stats.

    ``stats`` carries the simulator's work counters (activations, messages,
    trans/merge memo hits — see :mod:`repro.perf` naming rules) so analysis
    drivers and benchmarks can report work done, not just wall time.
    """

    labels: list[Any]
    iterations: int = 0
    messages: int = 0
    stats: dict[str, int] = field(default_factory=dict)

    def label(self, node: int) -> Any:
        return self.labels[node]

    def check_assertions(self, assert_fn: Callable[[int, Any], bool] | None
                         ) -> list[int]:
        """Nodes whose converged attribute violates the assertion."""
        if assert_fn is None:
            return []
        return [u for u, attr in enumerate(self.labels) if not assert_fn(u, attr)]

    def pretty(self, max_nodes: int | None = None) -> str:
        lines = []
        for u, attr in enumerate(self.labels):
            if max_nodes is not None and u >= max_nodes:
                lines.append(f"... ({len(self.labels) - max_nodes} more)")
                break
            lines.append(f"node {u}: {value_repr(attr)}")
        return "\n".join(lines)
