"""The stable routing problem (SRP) network model.

A network (paper fig 8) is a graph plus the ``init``/``trans``/``merge``
(and optional ``assert``) functions.  :class:`Network` keeps the NV program
form; :class:`NetworkFunctions` is the executable form consumed by the
simulator, with the functions uncurried into plain Python callables.

Topology convention: the ``edges`` declaration lists physical links once
(``{0n=1n; ...}``); routing messages flow both ways, so the directed edge set
contains both orientations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..eval.interp import Interpreter, program_env
from ..eval.maps import MapContext
from ..lang import ast as A
from ..lang import types as T
from ..lang.errors import NvError
from ..lang.typecheck import check_network


@dataclass
class Network:
    """A verification problem: topology + protocol functions + property."""

    program: A.Program
    num_nodes: int
    edges: tuple[tuple[int, int], ...]          # directed
    attr_ty: T.Type
    links: tuple[tuple[int, int], ...] = ()     # undirected physical links

    @staticmethod
    def from_program(program: A.Program) -> "Network":
        """Type check a program and extract its network structure."""
        attr_ty = check_network(program)
        num_nodes = program.nodes
        links = program.edges
        directed: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for u, v in links:
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise NvError(f"edge ({u}, {v}) out of range for {num_nodes} nodes")
            for edge in ((u, v), (v, u)):
                if edge not in seen:
                    seen.add(edge)
                    directed.append(edge)
        return Network(program, num_nodes, tuple(directed), attr_ty, tuple(links))

    def neighbors_in(self) -> list[list[tuple[int, int]]]:
        """For each node, the directed edges arriving at it."""
        inc: list[list[tuple[int, int]]] = [[] for _ in range(self.num_nodes)]
        for u, v in self.edges:
            inc[v].append((u, v))
        return inc

    def neighbors_out(self) -> list[list[tuple[int, int]]]:
        """For each node, the directed edges leaving it."""
        out: list[list[tuple[int, int]]] = [[] for _ in range(self.num_nodes)]
        for u, v in self.edges:
            out[u].append((u, v))
        return out


@dataclass
class NetworkFunctions:
    """Executable form of a network's protocol: uncurried host callables.

    Incidence lists are built once and cached — the simulator, stability
    checker and analysis drivers all need them, and rebuilding per call
    showed up on the fig 14 benchmark profile.
    """

    num_nodes: int
    edges: tuple[tuple[int, int], ...]
    init: Callable[[int], Any]
    trans: Callable[[tuple[int, int], Any], Any]
    merge: Callable[[int, Any, Any], Any]
    assert_fn: Callable[[int, Any], bool] | None = None
    ctx: MapContext | None = None
    attr_ty: T.Type | None = None
    _out_edges: list[list[tuple[int, int]]] | None = field(
        default=None, repr=False, compare=False)
    _in_edges: list[list[tuple[int, int]]] | None = field(
        default=None, repr=False, compare=False)

    def neighbors_out(self) -> list[list[tuple[int, int]]]:
        """For each node, the directed edges leaving it (cached)."""
        out = self._out_edges
        if out is None:
            out = [[] for _ in range(self.num_nodes)]
            for u, v in self.edges:
                out[u].append((u, v))
            self._out_edges = out
        return out

    def neighbors_in(self) -> list[list[tuple[int, int]]]:
        """For each node, the directed edges arriving at it (cached)."""
        inc = self._in_edges
        if inc is None:
            inc = [[] for _ in range(self.num_nodes)]
            for u, v in self.edges:
                inc[v].append((u, v))
            self._in_edges = inc
        return inc


def functions_from_program(net: Network,
                           symbolics: dict[str, Any] | None = None,
                           ctx: MapContext | None = None,
                           interp: Interpreter | None = None) -> NetworkFunctions:
    """Build interpreter-backed callables for a network.

    ``symbolics`` provides the concrete values required by normalisation-based
    analyses (paper §3): simulation fixes each symbolic to a concrete value.
    """
    if ctx is None:
        ctx = MapContext(net.num_nodes, net.edges)
    if interp is None:
        interp = Interpreter(ctx)
    env = program_env(net.program, interp, symbolics)

    init_v = env["init"]
    trans_v = env["trans"]
    merge_v = env["merge"]
    assert_v = env.get("assert")

    def init(u: int) -> Any:
        return interp.apply(init_v, u)

    def trans(edge: tuple[int, int], x: Any) -> Any:
        return interp.apply(interp.apply(trans_v, edge), x)

    def merge(u: int, x: Any, y: Any) -> Any:
        return interp.apply(interp.apply(interp.apply(merge_v, u), x), y)

    assert_fn = None
    if assert_v is not None:
        def assert_fn(u: int, x: Any) -> bool:  # noqa: F811
            return bool(interp.apply(interp.apply(assert_v, u), x))

    return NetworkFunctions(net.num_nodes, net.edges, init, trans, merge,
                            assert_fn, ctx, net.attr_ty)
