"""The stable routing problem (SRP) network model.

A network (paper fig 8) is a graph plus the ``init``/``trans``/``merge``
(and optional ``assert``) functions.  :class:`Network` keeps the NV program
form; :class:`NetworkFunctions` is the executable form consumed by the
simulator, with the functions uncurried into plain Python callables.

Topology convention: the ``edges`` declaration lists physical links once
(``{0n=1n; ...}``); routing messages flow both ways, so the directed edge set
contains both orientations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..eval.interp import Interpreter, program_env
from ..eval.maps import MapContext, NVMap, combine_many, map_ite_many
from ..eval.values import VClosure
from ..lang import ast as A
from ..lang import types as T
from ..lang.errors import NvError
from ..lang.typecheck import check_network


@dataclass
class Network:
    """A verification problem: topology + protocol functions + property."""

    program: A.Program
    num_nodes: int
    edges: tuple[tuple[int, int], ...]          # directed
    attr_ty: T.Type
    links: tuple[tuple[int, int], ...] = ()     # undirected physical links

    @staticmethod
    def from_program(program: A.Program) -> "Network":
        """Type check a program and extract its network structure."""
        attr_ty = check_network(program)
        num_nodes = program.nodes
        links = program.edges
        directed: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for u, v in links:
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise NvError(f"edge ({u}, {v}) out of range for {num_nodes} nodes")
            for edge in ((u, v), (v, u)):
                if edge not in seen:
                    seen.add(edge)
                    directed.append(edge)
        return Network(program, num_nodes, tuple(directed), attr_ty, tuple(links))

    def neighbors_in(self) -> list[list[tuple[int, int]]]:
        """For each node, the directed edges arriving at it."""
        inc: list[list[tuple[int, int]]] = [[] for _ in range(self.num_nodes)]
        for u, v in self.edges:
            inc[v].append((u, v))
        return inc

    def neighbors_out(self) -> list[list[tuple[int, int]]]:
        """For each node, the directed edges leaving it."""
        out: list[list[tuple[int, int]]] = [[] for _ in range(self.num_nodes)]
        for u, v in self.edges:
            out[u].append((u, v))
        return out


@dataclass
class NetworkFunctions:
    """Executable form of a network's protocol: uncurried host callables.

    Incidence lists are built once and cached — the simulator, stability
    checker and analysis drivers all need them, and rebuilding per call
    showed up on the fig 14 benchmark profile.
    """

    num_nodes: int
    edges: tuple[tuple[int, int], ...]
    init: Callable[[int], Any]
    trans: Callable[[tuple[int, int], Any], Any]
    merge: Callable[[int, Any, Any], Any]
    assert_fn: Callable[[int, Any], bool] | None = None
    ctx: MapContext | None = None
    attr_ty: T.Type | None = None
    # Optional multi-root batch entry points (see the simulator's batched
    # activation path): ``trans_many(edges, attr)`` pushes one attribute
    # across many edges in one fused diagram pass; ``merge_many(items)``
    # merges many ``(u, x, y)`` triples likewise.  ``None`` means "no batch
    # form known" — the scalar callables above remain the semantic spec.
    trans_many: Callable[[Sequence[tuple[int, int]], Any], list] | None = None
    merge_many: Callable[[Sequence[tuple[int, Any, Any]]], list] | None = None
    _out_edges: list[list[tuple[int, int]]] | None = field(
        default=None, repr=False, compare=False)
    _in_edges: list[list[tuple[int, int]]] | None = field(
        default=None, repr=False, compare=False)

    def neighbors_out(self) -> list[list[tuple[int, int]]]:
        """For each node, the directed edges leaving it (cached)."""
        out = self._out_edges
        if out is None:
            out = [[] for _ in range(self.num_nodes)]
            for u, v in self.edges:
                out[u].append((u, v))
            self._out_edges = out
        return out

    def neighbors_in(self) -> list[list[tuple[int, int]]]:
        """For each node, the directed edges arriving at it (cached)."""
        inc = self._in_edges
        if inc is None:
            inc = [[] for _ in range(self.num_nodes)]
            for u, v in self.edges:
                inc[v].append((u, v))
            self._in_edges = inc
        return inc


def functions_from_program(net: Network,
                           symbolics: dict[str, Any] | None = None,
                           ctx: MapContext | None = None,
                           interp: Interpreter | None = None) -> NetworkFunctions:
    """Build interpreter-backed callables for a network.

    ``symbolics`` provides the concrete values required by normalisation-based
    analyses (paper §3): simulation fixes each symbolic to a concrete value.
    """
    if ctx is None:
        ctx = MapContext(net.num_nodes, net.edges)
    if interp is None:
        interp = Interpreter(ctx)
    env = program_env(net.program, interp, symbolics)

    init_v = env["init"]
    trans_v = env["trans"]
    merge_v = env["merge"]
    assert_v = env.get("assert")

    def init(u: int) -> Any:
        return interp.apply(init_v, u)

    def trans(edge: tuple[int, int], x: Any) -> Any:
        return interp.apply(interp.apply(trans_v, edge), x)

    def merge(u: int, x: Any, y: Any) -> Any:
        return interp.apply(interp.apply(interp.apply(merge_v, u), x), y)

    assert_fn = None
    if assert_v is not None:
        def assert_fn(u: int, x: Any) -> bool:  # noqa: F811
            return bool(interp.apply(interp.apply(assert_v, u), x))

    return NetworkFunctions(net.num_nodes, net.edges, init, trans, merge,
                            assert_fn, ctx, net.attr_ty,
                            trans_many=_build_trans_many(trans_v, interp, ctx,
                                                         trans),
                            merge_many=_build_merge_many(merge_v, interp, ctx,
                                                         merge))


# ----------------------------------------------------------------------
# Multi-root batch forms (paper fig 5 meta-protocol shapes)
#
# The fig-5 fault transform emits ``merge u x y = combine (mergeBase u) x y``
# and ``trans e x = mapIte (fails e) drop (transBase e) x``.  When the
# interpreted closures have exactly those shapes, the per-edge/per-node
# diagram operations of one simulator activation can fuse into a single
# multi-root frontier pass (``NVMap.combine_many`` / ``map_ite_many``) —
# one dedup domain instead of hundreds of thin per-scenario passes.  Any
# other shape returns ``None`` and the scalar callables stay authoritative.
# ----------------------------------------------------------------------

def _build_merge_many(merge_v: Any, interp: Interpreter, ctx: MapContext,
                      merge: Callable) -> Callable | None:
    """Batch form for ``merge u x y = mcombine f x y`` closures."""
    from ..lang import ast as A

    if not (isinstance(merge_v, VClosure) and isinstance(merge_v.body, A.EFun)
            and isinstance(merge_v.body.body, A.EFun)):
        return None
    x_param = merge_v.body.param
    y_param = merge_v.body.body.param
    body = merge_v.body.body.body
    if not (isinstance(body, A.EOp) and body.op == "mcombine"
            and isinstance(body.args[1], A.EVar)
            and body.args[1].name == x_param
            and isinstance(body.args[2], A.EVar)
            and body.args[2].name == y_param):
        return None
    fn_expr = body.args[0]
    if {x_param, y_param} & A.free_vars(fn_expr):
        return None
    # Per-node cache of (combine callback, shared memo): the memo keys on
    # the closure's captured values (u included), so one entry per node is
    # exactly the scalar interpreter's memo granularity.
    per_u: dict[int, tuple[Callable, dict]] = {}

    def merge_many(items: Sequence[tuple[int, Any, Any]]) -> list:
        batch: list = []
        out: list = [None] * len(items)
        slots: list[int] = []
        for i, (u, x, y) in enumerate(items):
            if not (isinstance(x, NVMap) and isinstance(y, NVMap)):
                out[i] = merge(u, x, y)
                continue
            ent = per_u.get(u)
            if ent is None:
                env2 = dict(merge_v.env)
                env2[merge_v.param] = u
                fn = interp.eval(fn_expr, env2)
                call = interp.as_callable(fn)
                partial: dict[int, Any] = {}

                def fn2(a: Any, b: Any, _call=call,
                        _partial=partial) -> Any:
                    fa = _partial.get(id(a))
                    if fa is None:
                        fa = _call(a)
                        _partial[id(a)] = fa
                    return interp.apply(fa, b)

                ent = (fn2, interp._memo_for(fn, interp._combine_memo))
                per_u[u] = ent
            fn2, memo = ent
            slots.append(i)
            batch.append((fn2, x, y, memo))
        if batch:
            for i, m in zip(slots, combine_many(batch)):
                out[i] = m
        return out

    return merge_many


def _build_trans_many(trans_v: Any, interp: Interpreter, ctx: MapContext,
                      trans: Callable) -> Callable | None:
    """Batch form for ``trans e x = mmapite pred f_true f_false x``
    closures (the fig-5 transfer: pred = "scenario fails e")."""
    from ..lang import ast as A

    if not (isinstance(trans_v, VClosure)
            and isinstance(trans_v.body, A.EFun)):
        return None
    x_param = trans_v.body.param
    body = trans_v.body.body
    if not (isinstance(body, A.EOp) and body.op == "mmapite"
            and isinstance(body.args[3], A.EVar)
            and body.args[3].name == x_param):
        return None
    pred_expr, ft_expr, ff_expr = body.args[0], body.args[1], body.args[2]
    if x_param in (A.free_vars(pred_expr) | A.free_vars(ft_expr)
                   | A.free_vars(ff_expr)):
        return None
    per_edge: dict[tuple, tuple] = {}

    def trans_many(edges: Sequence[tuple[int, int]], attr: Any) -> list:
        if not isinstance(attr, NVMap):
            return [trans(e, attr) for e in edges]
        items: list = []
        for e in edges:
            cache_key = (e, attr.key_ty)
            ent = per_edge.get(cache_key)
            if ent is None:
                env2 = dict(trans_v.env)
                env2[trans_v.param] = e
                pred = interp.eval(pred_expr, env2)
                fn_t = interp.eval(ft_expr, env2)
                fn_f = interp.eval(ff_expr, env2)
                pred_bdd = interp.predicate_bdd(pred, attr.key_ty)
                kt = (interp._closure_key(fn_t)
                      if interp.enable_cache else None)
                kf = (interp._closure_key(fn_f)
                      if interp.enable_cache else None)
                cacheable = kt is not None and kf is not None
                memo = (interp._mapite_memo.setdefault((kt, kf), {})
                        if cacheable else {})
                ent = (pred_bdd, interp.as_callable(fn_t),
                       interp.as_callable(fn_f), memo,
                       interp._memo_for(fn_t, interp._map_memo),
                       interp._memo_for(fn_f, interp._map_memo))
                if cacheable:
                    per_edge[cache_key] = ent
            pb, ct, cf, memo, mt, mf = ent
            items.append((pb, ct, cf, attr, memo, mt, mf))
        return map_ite_many(items)

    return trans_many
