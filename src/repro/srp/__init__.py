"""The stable routing problem: network model and simulator (paper §2.5, alg 1)."""

from .network import Network, NetworkFunctions, functions_from_program
from .simulate import is_stable, simulate
from .solution import Solution

__all__ = ["Network", "NetworkFunctions", "functions_from_program",
           "simulate", "is_stable", "Solution"]
