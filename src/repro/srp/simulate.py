"""The NV network simulator (paper §5.1, Algorithm 1).

A worklist algorithm over nodes: a popped node pushes its attribute across
its out-edges; receivers merge the transferred route into their current
label.  Refinements over the paper's Algorithm 1:

* **Stale-route handling** — each node remembers the last route received from
  every neighbour.  When a fresh route arrives from a neighbour that had
  previously sent one, the old information baked into the current label may
  be stale.
* **Incremental merge** (ShapeShifter's observation) — if
  ``merge(old, new) = new`` the new route supersedes the old one, so it can
  be merged into the existing label directly; only otherwise is the full
  re-merge of every received route performed.  The ablation benchmark
  ``bench_ablation_incremental`` measures this choice.
* **Route interning + memoised trans/merge** (this reproduction's hot-path
  work, toward the paper's fig 14 speed claims) — every route is hash-consed
  through a :class:`~repro.eval.values.ValueInterner`, so label-change tests
  are identity tests and per-edge ``trans`` / per-node ``merge`` results can
  be memoised on the (interned) argument values.  A node popped with the
  same label it last pushed is skipped outright: all of its messages would
  be byte-identical to what its neighbours already hold.
* **Cached partial merges** — the full re-merge path folds over the received
  routes in stable (insertion-order) sequence through the same per-node
  merge memo, so an unchanged prefix of the fold is pure cache hits.

The simulator is agnostic to how the protocol functions execute — interpreted
closures, compiled Python, MTBDD-bulk maps — which is exactly the paper's
point: it simulates the NV *language*, not a fixed protocol.  Run statistics
(activations, messages, memo hit counts) are returned on the
:class:`~repro.srp.solution.Solution` and flushed into :mod:`repro.perf`
when that registry is enabled.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .. import metrics, obs, perf
from ..eval.values import ValueInterner, value_repr
from ..lang.errors import NvRuntimeError
from .network import NetworkFunctions
from .solution import Solution

_NEVER = object()   # sentinel: "this node has not pushed yet"


def simulate(funcs: NetworkFunctions, max_iterations: int | None = None,
             incremental: bool = True, memoize: bool = True,
             out_edges: list[list[tuple[int, int]]] | None = None) -> Solution:
    """Compute a stable state of the network.

    ``memoize`` enables route interning plus the trans/merge memo caches
    (identical labels, hence identical results, recur constantly while the
    worklist converges).  ``out_edges`` optionally supplies a precomputed
    out-incidence list (``NetworkFunctions.neighbors_out()``), sharing the
    build between repeated simulations of one network.

    Raises :class:`NvRuntimeError` if ``max_iterations`` pops are exceeded —
    the underlying route algebra may be divergent (the paper notes Algorithm 1
    need not terminate in general).
    """
    n = funcs.num_nodes
    if out_edges is None:
        out_edges = funcs.neighbors_out()

    init = funcs.init
    trans = funcs.trans
    merge = funcs.merge
    trans_many = funcs.trans_many
    merge_many = funcs.merge_many

    # ------------------------------------------------------------------
    # Memoisation layer: interned routes plus a per-node merge memo.  All
    # keys are interned values, so dict probes resolve on identity for
    # repeated routes.
    #
    # There is deliberately *no* per-edge trans memo: the skipped-activation
    # check below already guarantees a node only re-pushes when its interned
    # label *changed*, so ``trans(edge, attr)`` is never called twice with
    # the same attribute on the same edge unless a label oscillates back to
    # an earlier value — which monotone route algebras never do.  PR 1
    # shipped such a memo anyway; ``sim.trans_cache_hit_rate`` measured 0.0
    # on every benchmark (BENCH_pr1.json fig13b counters), so it was pure
    # overhead (a dict probe + insert per message) and was removed.
    # ------------------------------------------------------------------
    stats = {
        "activations": 0, "messages": 0, "skipped_activations": 0,
        "merge_cache_hits": 0, "merge_cache_misses": 0,
    }
    if memoize:
        interner = ValueInterner()
        intern = interner.intern
        # merge memo: node -> {(a, b): route}.
        merge_memo: list[dict[Any, Any]] = [{} for _ in range(n)]

        def trans_m(edge: tuple[int, int], attr: Any) -> Any:
            return intern(trans(edge, attr))

        def merge_m(v: int, a: Any, b: Any) -> Any:
            memo = merge_memo[v]
            key = (id(a), id(b))
            cached = memo.get(key)
            if cached is not None:
                stats["merge_cache_hits"] += 1
                return cached[0]
            stats["merge_cache_misses"] += 1
            route = intern(merge(v, a, b))
            # Keep a, b alive in the cache entry so their ids stay unique.
            memo[key] = (route, a, b)
            return route

        def merge_batch(tasks: list) -> list:
            """Batch of independent ``merge_m`` calls: probe each memo with
            the exact hit/miss accounting of the scalar path (a repeat of a
            still-pending miss counts as the hit it would score after the
            first call's memo write), then compute all misses in one fused
            ``merge_many`` pass."""
            out: list = [None] * len(tasks)
            miss_idx: list[int] = []
            dups: list[tuple[int, int]] = []
            pending: dict = {}
            for i, (v, a, b) in enumerate(tasks):
                key = (id(a), id(b))
                cached = merge_memo[v].get(key)
                if cached is not None:
                    stats["merge_cache_hits"] += 1
                    out[i] = cached[0]
                    continue
                first = pending.get((v, key))
                if first is not None:
                    stats["merge_cache_hits"] += 1
                    dups.append((i, first))
                    continue
                stats["merge_cache_misses"] += 1
                pending[(v, key)] = i
                miss_idx.append(i)
            if miss_idx:
                routes = merge_many([tasks[i] for i in miss_idx])
                for i, route in zip(miss_idx, routes):
                    v, a, b = tasks[i]
                    route = intern(route)
                    merge_memo[v][(id(a), id(b))] = (route, a, b)
                    out[i] = route
            for i, j in dups:
                out[i] = out[j]
            return out
    else:
        def intern(value: Any) -> Any:
            return value

        def trans_m(edge: tuple[int, int], attr: Any) -> Any:
            return trans(edge, attr)

        def merge_m(v: int, a: Any, b: Any) -> Any:
            return merge(v, a, b)

    # The batched activation path requires the memoised incremental
    # pipeline (its phase split mirrors exactly that decision structure)
    # plus a network that knows its batch forms.
    batched = memoize and incremental and merge_many is not None

    labels: list[Any] = [intern(init(u)) for u in range(n)]
    initial: list[Any] = list(labels)
    # received[v][u] = last route transferred from u to v.
    received: list[dict[int, Any]] = [{} for _ in range(n)]
    # last_pushed[u] = the label u held when it last pushed its out-edges.
    last_pushed: list[Any] = [_NEVER] * n

    queue: deque[int] = deque(range(n))
    in_queue = [True] * n
    iterations = 0
    messages = 0
    limit = max_iterations if max_iterations is not None else 100 * n * max(len(funcs.edges), 1)

    # Tracing is hoisted to one local bool: when off, the hot loop pays a
    # single falsy check per activation/label change (see repro.obs rules).
    tracing = obs.is_enabled()
    obs_event = obs.event

    # Live structural gauges for the heartbeat sampler: worklist depth,
    # activation/message progress (perf only sees these flushed at the
    # end), and the interner population.  The closure reads loop locals at
    # sample time — single ``len``s and int reads under the GIL, safe from
    # the sampler thread.  No-op (returns a no-op) when metrics are off.
    def _live_gauges() -> dict[str, int]:
        gauges = {
            "sim.worklist_depth": len(queue),
            "sim.activations": iterations,
            "sim.messages": messages,
        }
        if memoize:
            gauges["sim.interned_routes"] = len(interner)
        return gauges

    unregister_gauges = metrics.register_provider("sim", _live_gauges)

    def update(v: int, route: Any) -> None:
        old = labels[v]
        if route is old:
            return
        if route != old:
            labels[v] = route
            if tracing:
                obs_event("sim.label_change", node=v, iteration=iterations,
                          route=value_repr(route))
            if not in_queue[v]:
                in_queue[v] = True
                queue.append(v)

    try:
        while queue:
            iterations += 1
            if iterations > limit:
                raise NvRuntimeError(
                    f"simulation did not converge within {limit} node "
                    "activations; the routing algebra may be divergent")
            u = queue.popleft()
            in_queue[u] = False
            attr_u = labels[u]
            skipped = attr_u is last_pushed[u]
            if tracing:
                # Convergence timeline: one activation event per pop.
                obs_event("sim.activation", node=u, iteration=iterations,
                          worklist=len(queue), skipped=skipped)
            if skipped:
                # Identical re-push: every neighbour already received exactly
                # these routes (interned identity), so all sends are no-ops.
                stats["skipped_activations"] += 1
                continue
            last_pushed[u] = attr_u
            edges_u = out_edges[u]
            if batched and len(edges_u) > 1:
                # ----------------------------------------------------------
                # Batched activation: all of u's sends, then all first-round
                # merges, then all second-round merges fuse into multi-root
                # diagram passes.  Each out-edge targets a distinct node, so
                # the per-node merge memos never interact within a phase and
                # the per-edge outcomes (and the order node v's queue entry
                # is appended in) are identical to the scalar loop below.
                # ----------------------------------------------------------
                if trans_many is not None:
                    news = [intern(r) for r in trans_many(edges_u, attr_u)]
                else:
                    news = [trans_m(edge, attr_u) for edge in edges_u]
                messages += len(edges_u)
                # Phase 1: classify edges; collect supersede checks (alg 1
                # l.15) and first-contact merges into one batch.
                kinds: list = [None] * len(edges_u)
                slot1 = [-1] * len(edges_u)
                tasks1: list = []
                for i, edge in enumerate(edges_u):
                    v = edge[1]
                    new = news[i]
                    received_v = received[v]
                    if u in received_v:
                        old = received_v[u]
                        received_v[u] = new
                        if old is new or old == new:
                            kinds[i] = "skip"
                            continue
                        kinds[i] = "check"
                        slot1[i] = len(tasks1)
                        tasks1.append((v, old, new))
                    else:
                        received_v[u] = new
                        kinds[i] = "first"
                        slot1[i] = len(tasks1)
                        tasks1.append((v, labels[v], new))
                res1 = merge_batch(tasks1)
                # Phase 2: supersede outcomes feed the commit-merge batch.
                slot2 = [-1] * len(edges_u)
                tasks2: list = []
                for i, edge in enumerate(edges_u):
                    if kinds[i] != "check":
                        continue
                    new = news[i]
                    merged = res1[slot1[i]]
                    if merged is new or merged == new:
                        v = edge[1]
                        slot2[i] = len(tasks2)
                        tasks2.append((v, labels[v], new))
                    else:
                        kinds[i] = "fold"
                res2 = merge_batch(tasks2)
                # Phase 3: commit label updates in edge order (full
                # re-merges stay scalar — each fold is a sequential chain
                # through one node's memo, exactly alg 1 l.18).
                for i, edge in enumerate(edges_u):
                    kind = kinds[i]
                    if kind == "skip":
                        continue
                    v = edge[1]
                    if kind == "first":
                        update(v, res1[slot1[i]])
                    elif kind == "check":
                        update(v, res2[slot2[i]])
                    else:
                        route = initial[v]
                        for route_w in received[v].values():
                            route = merge_m(v, route, route_w)
                        update(v, route)
                continue
            for edge in edges_u:
                v = edge[1]
                new = trans_m(edge, attr_u)
                messages += 1
                received_v = received[v]
                if u in received_v:
                    old = received_v[u]
                    received_v[u] = new
                    if old is new or old == new:
                        continue
                    if incremental:
                        merged = merge_m(v, old, new)
                        superseded = merged is new or merged == new
                    else:
                        superseded = False
                    if superseded:
                        # The new route supersedes the stale one (alg 1
                        # l.15-17).
                        update(v, merge_m(v, labels[v], new))
                    else:
                        # Full re-merge of everything v knows (alg 1 l.18);
                        # the stable fold order makes unchanged prefixes hit
                        # the per-node merge memo.
                        route = initial[v]
                        for route_w in received_v.values():
                            route = merge_m(v, route, route_w)
                        update(v, route)
                else:
                    received_v[u] = new
                    update(v, merge_m(v, labels[v], new))
    finally:
        unregister_gauges()

    stats["activations"] = iterations
    stats["messages"] = messages
    if memoize:
        stats["interned_routes"] = len(interner)
    if tracing:
        obs_event("sim.converged", iterations=iterations, messages=messages,
                  skipped=stats["skipped_activations"])
    perf.merge(stats, prefix="sim.")
    return Solution(labels, iterations=iterations, messages=messages,
                    stats=stats)


def is_stable(funcs: NetworkFunctions, labels: list[Any],
              in_edges: list[list[tuple[int, int]]] | None = None) -> bool:
    """Check the stability equations of §2.5 directly:
    ``L(u) = init(u) ⊕ trans(e1, L(v1)) ⊕ ... ⊕ trans(en, L(vn))``.

    ``in_edges`` optionally supplies a precomputed in-incidence list
    (``NetworkFunctions.neighbors_in()``); by default the cached incidence
    on ``funcs`` is used instead of rebuilding it per call.
    """
    if in_edges is None:
        in_edges = funcs.neighbors_in()
    for u in range(funcs.num_nodes):
        expected = funcs.init(u)
        for edge in in_edges[u]:
            expected = funcs.merge(u, expected, funcs.trans(edge, labels[edge[0]]))
        if expected != labels[u]:
            return False
    return True
