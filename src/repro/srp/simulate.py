"""The NV network simulator (paper §5.1, Algorithm 1).

A worklist algorithm over nodes: a popped node pushes its attribute across
its out-edges; receivers merge the transferred route into their current
label.  Two refinements from the paper:

* **Stale-route handling** — each node remembers the last route received from
  every neighbour.  When a fresh route arrives from a neighbour that had
  previously sent one, the old information baked into the current label may
  be stale.
* **Incremental merge** (ShapeShifter's observation) — if
  ``merge(old, new) = new`` the new route supersedes the old one, so it can
  be merged into the existing label directly; only otherwise is the full
  re-merge of every received route performed.  The ablation benchmark
  ``bench_ablation_incremental`` measures this choice.

The simulator is agnostic to how the protocol functions execute — interpreted
closures, compiled Python, MTBDD-bulk maps — which is exactly the paper's
point: it simulates the NV *language*, not a fixed protocol.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from ..lang.errors import NvRuntimeError
from .network import NetworkFunctions
from .solution import Solution


def simulate(funcs: NetworkFunctions, max_iterations: int | None = None,
             incremental: bool = True) -> Solution:
    """Compute a stable state of the network.

    Raises :class:`NvRuntimeError` if ``max_iterations`` pops are exceeded —
    the underlying route algebra may be divergent (the paper notes Algorithm 1
    need not terminate in general).
    """
    n = funcs.num_nodes
    out_edges: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for u, v in funcs.edges:
        out_edges[u].append((u, v))

    init = funcs.init
    trans = funcs.trans
    merge = funcs.merge

    labels: list[Any] = [init(u) for u in range(n)]
    initial: list[Any] = list(labels)
    # received[v][u] = last route transferred from u to v.
    received: list[dict[int, Any]] = [{} for _ in range(n)]

    queue: deque[int] = deque(range(n))
    in_queue = [True] * n
    iterations = 0
    messages = 0
    limit = max_iterations if max_iterations is not None else 100 * n * max(len(funcs.edges), 1)

    def update(v: int, route: Any) -> None:
        if route != labels[v]:
            labels[v] = route
            if not in_queue[v]:
                in_queue[v] = True
                queue.append(v)

    while queue:
        iterations += 1
        if iterations > limit:
            raise NvRuntimeError(
                f"simulation did not converge within {limit} node activations; "
                "the routing algebra may be divergent")
        u = queue.popleft()
        in_queue[u] = False
        attr_u = labels[u]
        for edge in out_edges[u]:
            v = edge[1]
            new = trans(edge, attr_u)
            messages += 1
            if u in received[v]:
                old = received[v][u]
                received[v][u] = new
                if old == new:
                    continue
                if incremental and merge(v, old, new) == new:
                    # The new route supersedes the stale one (alg 1 l.15-17).
                    update(v, merge(v, labels[v], new))
                else:
                    # Full re-merge of everything v knows (alg 1 l.18).
                    route = initial[v]
                    for route_w in received[v].values():
                        route = merge(v, route, route_w)
                    update(v, route)
            else:
                received[v][u] = new
                update(v, merge(v, labels[v], new))

    return Solution(labels, iterations=iterations, messages=messages)


def is_stable(funcs: NetworkFunctions, labels: list[Any]) -> bool:
    """Check the stability equations of §2.5 directly:
    ``L(u) = init(u) ⊕ trans(e1, L(v1)) ⊕ ... ⊕ trans(en, L(vn))``."""
    n = funcs.num_nodes
    in_edges: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for u, v in funcs.edges:
        in_edges[v].append((u, v))
    for u in range(n):
        expected = funcs.init(u)
        for edge in in_edges[u]:
            expected = funcs.merge(u, expected, funcs.trans(edge, labels[edge[0]]))
        if expected != labels[u]:
            return False
    return True
