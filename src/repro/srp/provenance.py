"""Route provenance: *why* did a node's stable route win? (paper §2's
debugging story).

Given a converged labelling ``L`` (a :class:`~repro.srp.solution.Solution`),
the stability equations of §2.5 say

    L(v) = init(v) ⊕ trans(e1, L(u1)) ⊕ ... ⊕ trans(en, L(un))

for the in-edges ``ei = (ui, v)``.  This module recovers, per node, *which*
of those operands determined the final label:

* ``init``   — the node's own initial route survived every merge;
* ``via``    — one neighbour's transferred route equals the stable label
  (the common case for selective algebras like BGP/RIP best-route choice);
* ``merged`` — the label is a genuine combination (e.g. pointwise MTBDD
  merges in the fault-tolerance analysis); the contributing neighbours are
  reported instead of a single parent.

Following ``via`` parents yields a **derivation chain** back to an origin —
the route's forwarding provenance.  The chain is *replayable*: starting from
``init`` at the origin and applying ``trans`` along each edge reproduces
every intermediate stable label, which is exactly what
``tests/srp/test_provenance.py`` checks and what ``repro explain NODE``
prints.

Everything here is computed post-hoc from the converged labels (at a fixed
point the last route received from ``u`` *is* ``trans((u, v), L(u))``), so
the simulator's hot path pays nothing for provenance support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..eval.values import value_repr
from .network import NetworkFunctions


@dataclass(frozen=True)
class Derivation:
    """How one node's stable label was determined."""

    node: int
    label: Any
    kind: str                              # "init" | "via" | "merged"
    edge: tuple[int, int] | None = None    # (u, v) for kind == "via"
    contributors: tuple[int, ...] = ()     # neighbours whose routes mattered

    @property
    def parent(self) -> int | None:
        return self.edge[0] if self.edge is not None else None


def derive_node(funcs: NetworkFunctions, labels: list[Any], v: int,
                in_edges: list[list[tuple[int, int]]] | None = None
                ) -> Derivation:
    """Classify how node ``v``'s stable label arose (see module docstring)."""
    if in_edges is None:
        in_edges = funcs.neighbors_in()
    label = labels[v]
    init_v = funcs.init(v)
    incoming = [(e, funcs.trans(e, labels[e[0]])) for e in in_edges[v]]

    # Origin check first: if the node's own initial route *is* the stable
    # label, it survived every merge and is the canonical explanation (a
    # neighbour echoing the same route back does not trump the origin).
    if init_v == label:
        return Derivation(v, label, "init")

    # A single neighbour whose transferred route equals the label determined
    # it outright (selective merge).  Deterministic tie-break: first in
    # in-edge order.
    for edge, route in incoming:
        if route == label:
            return Derivation(v, label, "via", edge=edge)

    # Otherwise the label is a genuine blend.  A neighbour contributes if
    # dropping its route changes the merge result.
    merge = funcs.merge
    contributors: list[int] = []
    for i, (edge, _) in enumerate(incoming):
        folded = init_v
        for j, (_, route) in enumerate(incoming):
            if j != i:
                folded = merge(v, folded, route)
        if folded != label:
            contributors.append(edge[0])
    return Derivation(v, label, "merged", contributors=tuple(contributors))


def derivation_chain(funcs: NetworkFunctions, labels: list[Any], node: int
                     ) -> list[Derivation]:
    """The derivation chain for ``node``: target first, origin last.

    Follows ``via`` parents until an ``init``/``merged`` derivation or a
    cycle (possible for algebras that are not strictly monotonic) is hit.
    """
    in_edges = funcs.neighbors_in()
    chain: list[Derivation] = []
    seen: set[int] = set()
    v = node
    while v not in seen:
        seen.add(v)
        d = derive_node(funcs, labels, v, in_edges)
        chain.append(d)
        if d.kind != "via":
            break
        v = d.parent  # type: ignore[assignment]
    return chain


def replay_chain(funcs: NetworkFunctions, chain: list[Derivation]
                 ) -> list[Any]:
    """Re-derive every label on the chain from the origin's ``init`` by
    applying ``trans`` along each ``via`` edge.  Returns the replayed labels
    in chain order (target first), for validation against the stable labels.

    Only meaningful when the chain ends in an ``init`` derivation; raises
    ``ValueError`` otherwise.
    """
    if not chain or chain[-1].kind != "init":
        raise ValueError("chain does not terminate in an init derivation")
    route = funcs.init(chain[-1].node)
    replayed = [route]
    for d in reversed(chain[:-1]):
        assert d.edge is not None
        route = funcs.trans(d.edge, route)
        replayed.append(route)
    replayed.reverse()
    return replayed


def explain(funcs: NetworkFunctions, labels: list[Any], node: int) -> str:
    """Human-readable provenance chain for ``node``'s stable route."""
    if not 0 <= node < funcs.num_nodes:
        raise ValueError(f"node {node} out of range "
                         f"(network has {funcs.num_nodes} nodes)")
    chain = derivation_chain(funcs, labels, node)
    lines = [f"provenance for node {node} "
             f"(stable route: {value_repr(labels[node])}):"]
    for d in chain:
        route = value_repr(d.label)
        if d.kind == "init":
            why = "init (origin)"
        elif d.kind == "via":
            assert d.edge is not None
            why = f"trans over edge ({d.edge[0]},{d.edge[1]}) from node {d.edge[0]}"
        elif d.contributors:
            why = ("merged from neighbours "
                   f"[{', '.join(str(u) for u in d.contributors)}] "
                   "(no single determining neighbour)")
        else:
            why = "merged (cyclic or self-sustaining derivation)"
        lines.append(f"  node {d.node}: {route}  ← {why}")
    if chain and chain[-1].kind == "via":
        lines.append("  ... (derivation re-enters a node already on the "
                     "chain; stopped at the cycle)")
    return "\n".join(lines)
