"""Command-line interface: ``python -m repro <command> ...``.

Mirrors the original artifact's ``nv`` binary: point it at an NV source file
(or a directory of router configurations) and pick an analysis.

    python -m repro simulate network.nv [--native] [--symbolic name=value ...]
    python -m repro verify network.nv [--portfolio K]
    python -m repro fault network.nv [--links N] [--nodes] [--witnesses]

The three analysis commands take ``--jobs N`` (default ``$NV_JOBS``, else
the CPU count capped at 8) and shard their work over worker processes:
``simulate``/``verify`` across several input files (one per destination
prefix), ``fault`` across failure-scenario batches.  ``--jobs 1`` runs the
identical work serially, in-process.
    python -m repro explain network.nv NODE
    python -m repro translate configs_dir/ [--assert-prefix A.B.C.D/L] [-o out.nv]

Symbolic values on the command line use NV literal syntax
(``--symbolic route=None``, ``--symbolic x=5u8``).

Observability flags shared by the analysis commands (see README
"Observability"):

* ``--stats`` collects and prints the flat :mod:`repro.perf` counters;
* ``--trace`` prints a hierarchical span tree (pipeline passes, simulation,
  SMT phases) with inclusive/exclusive times and per-span counter deltas;
* ``--trace-json FILE`` streams span + timeline-event records as JSONL;
* ``--progress`` renders a live stderr status line (heartbeat sampler);
* ``--heartbeat SECONDS`` sets the sampling period (implies a heartbeat);
* ``--metrics-json FILE`` / ``--prometheus FILE`` export the final
  counter/gauge/histogram snapshot;
* ``--mem`` adds tracemalloc memory accounting (per-span high-water marks);
* ``--time-budget SECONDS`` warns when the run exceeds its wall-time budget.

``python -m repro report trace.jsonl`` turns a trace (plus an optional
metrics snapshot) into a self-contained HTML run report.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from time import perf_counter
from typing import Any

from . import metrics, obs, parallel, perf
from .analysis.fault import fault_tolerance_sharded
from .analysis.simulation import run_simulation, run_simulations
from .analysis.verify import verify as smt_verify
from .analysis.verify import verify_many
from .eval.interp import Interpreter
from .eval.maps import MapContext
from .eval.values import value_repr
from .lang.errors import NvError
from .lang.parser import parse_expr, parse_program
from .lang.typecheck import check_program
from .protocols import resolve
from .srp.network import Network


def _load_network(path: str) -> Network:
    with obs.span("frontend.parse", file=path):
        program = parse_program(Path(path).read_text(), resolve)
    with obs.span("frontend.typecheck"):
        return Network.from_program(program)


def _parse_symbolics(pairs: list[str], net: Network) -> dict[str, Any]:
    """Evaluate `name=<nv literal>` bindings in the network's context."""
    out: dict[str, Any] = {}
    interp = Interpreter(MapContext(net.num_nodes, net.edges))
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--symbolic expects name=value, got {pair!r}")
        name, text = pair.split("=", 1)
        expr = parse_expr(text)
        from .lang import ast as A
        program = A.Program([A.DLet("__cli", expr)])
        check_program(program)
        out[name] = interp.eval(expr)
    return out


def _maybe_enable_stats(args: argparse.Namespace) -> None:
    """``--stats`` turns on the :mod:`repro.perf` registry for this run."""
    if getattr(args, "stats", False):
        perf.reset()
        perf.enable()


def _tracing(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "trace", False)
                or getattr(args, "trace_json", None))


def _metrics_on(args: argparse.Namespace) -> bool:
    """Any live-metrics flag turns the gauge/histogram registry on.
    ``--record`` counts: the RunRecord's gauges and histogram digests
    (including the kernel telemetry flushed under ``NV_TELEMETRY``) only
    exist while the registry is live."""
    return bool(getattr(args, "progress", False)
                or getattr(args, "heartbeat", None) is not None
                or getattr(args, "metrics_json", None)
                or getattr(args, "prometheus", None)
                or getattr(args, "mem", False)
                or getattr(args, "time_budget", None) is not None
                or getattr(args, "record", None) is not None)


def _heartbeat_on(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "progress", False)
                or getattr(args, "heartbeat", None) is not None
                or getattr(args, "time_budget", None) is not None)


def cmd_simulate(args: argparse.Namespace) -> int:
    _maybe_enable_stats(args)
    nets = [_load_network(f) for f in args.file]
    symbolics = _parse_symbolics(args.symbolic, nets[0])
    # --trace defaults to running the (value-preserving subset of the) §5.2
    # pipeline so the span tree shows per-pass work; --lower/--no-lower
    # overrides in either direction.
    lower = args.lower if args.lower is not None else _tracing(args)
    backend = "native" if args.native else "interp"
    if len(nets) == 1:
        # Single network: run in-process (live labels, exact legacy output).
        reports = [run_simulation(nets[0], symbolics, backend, lower=lower)]
    else:
        # Several networks (e.g. one file per destination prefix): shard
        # over the worker pool.  Labels come back frozen (picklable
        # snapshots) but summaries/violations are unaffected.
        reports = run_simulations(nets, symbolics, backend, lower=lower,
                                  jobs=parallel.resolve_jobs(args.jobs),
                                  unit_labels=[str(f) for f in args.file])
    rc = 0
    for path, report in zip(args.file, reports):
        if len(nets) > 1:
            print(f"== {path}")
        print(report.summary())
        if args.show_routes:
            print(report.solution.pretty(max_nodes=args.max_nodes))
        if report.violations:
            print(f"assertion violated at nodes: {report.violations}")
            rc = 1
    return rc


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain network.nv NODE``: simulate to convergence, then print
    the provenance chain of NODE's stable route (which neighbour's trans
    output the label came from, back to an init origin)."""
    from .eval.compile_py import compile_network_functions
    from .srp.network import functions_from_program
    from .srp.provenance import explain
    from .srp.simulate import simulate

    _maybe_enable_stats(args)
    net = _load_network(args.file)
    if not 0 <= args.node < net.num_nodes:
        raise SystemExit(f"node {args.node} out of range "
                         f"(network has {net.num_nodes} nodes)")
    symbolics = _parse_symbolics(args.symbolic, net)
    with obs.span("sim.setup", backend="native" if args.native else "interp"):
        if args.native:
            funcs = compile_network_functions(net, symbolics)
        else:
            funcs = functions_from_program(net, symbolics)
    with obs.span("sim.simulate", nodes=net.num_nodes, edges=len(net.edges)):
        solution = simulate(funcs)
    with obs.span("sim.provenance", node=args.node):
        text = explain(funcs, solution.labels, args.node)
    print(text)
    if args.stats:
        print(perf.report())
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    _maybe_enable_stats(args)
    nets = [_load_network(f) for f in args.file]
    if (args.partition is not None or args.cuts is not None
            or args.partition_method is not None):
        return _cmd_verify_partitioned(args, nets)
    if len(nets) == 1:
        results = [smt_verify(nets[0], max_conflicts=args.max_conflicts,
                              portfolio=args.portfolio, jobs=args.jobs)]
    elif args.incremental:
        # Shared-encoding batch: one persistent solver, one assumption
        # selector per file; learnt clauses and preprocessing amortise
        # across queries (verdicts identical to fresh mode).
        results = verify_many(nets, max_conflicts=args.max_conflicts,
                              incremental=True, portfolio=args.portfolio,
                              jobs=args.jobs)
    else:
        # One independent SMT query per file (e.g. per destination prefix),
        # sharded over the worker pool.  --portfolio targets a single hard
        # query; with several files the parallelism axis is across queries.
        if args.portfolio > 1:
            print("note: --portfolio ignored with multiple files "
                  "(queries shard across workers instead)", file=sys.stderr)
        results = verify_many(nets, max_conflicts=args.max_conflicts,
                              jobs=parallel.resolve_jobs(args.jobs),
                              unit_labels=[str(f) for f in args.file])
    rc = 0
    for path, result in zip(args.file, results):
        if len(nets) > 1:
            print(f"== {path}")
        print(result.summary())
        if result.status == "counterexample":
            for name, value in result.counterexample.items():
                print(f"  symbolic {name} = {value_repr(value)}")
            if args.show_routes:
                for node, attr in sorted(result.node_attrs.items()):
                    print(f"  node {node}: {value_repr(attr)}")
            rc = max(rc, 1)
        elif not result.verified:
            rc = max(rc, 2)
    if args.stats:
        print(perf.report())
    return rc


def _cmd_verify_partitioned(args: argparse.Namespace,
                            nets: list[Network]) -> int:
    """``repro verify --partition K`` / ``--cuts FILE``: modular
    (Kirigami-style) verification of one network — cut, verify fragments in
    parallel across ``--jobs`` workers, discharge interfaces."""
    from .analysis.partition import verify_partitioned
    from .partition import load_cut_file

    if len(nets) > 1:
        raise SystemExit("--partition/--cuts verify a single network "
                         "(the parallel axis is across fragments, not files)")
    net = nets[0]
    symbolics = _parse_symbolics(args.symbolic, net) or None
    cuts = load_cut_file(args.cuts) if args.cuts else None
    report = verify_partitioned(
        net, partition=args.partition, cuts=cuts,
        method=args.partition_method or "auto",
        max_conflicts=args.max_conflicts,
        jobs=parallel.resolve_jobs(args.jobs), symbolics=symbolics)
    print(report.summary())
    if report.status == "counterexample":
        for name, value in (report.counterexample or {}).items():
            print(f"  symbolic {name} = {value_repr(value)}")
        if args.show_routes and report.node_attrs:
            scope = ("stitched whole-network state" if report.stitched
                     else "failing fragment(s) only")
            print(f"  counterexample routes ({scope}):")
            for node, attr in sorted(report.node_attrs.items()):
                print(f"  node {node}: {value_repr(attr)}")
    for fr in report.fragments:
        for g in fr.guarantees:
            if g.status == "refuted" and g.witness and args.show_routes:
                print(f"  interface {g.edge[0]}->{g.edge[1]} violated by "
                      f"fragment {fr.index} stable state:")
                for node, attr in sorted(g.witness.items()):
                    print(f"    node {node}: {value_repr(attr)}")
    if args.stats:
        print(perf.report())
    if report.verified:
        return 0
    return 1 if report.status == "counterexample" else 2


def cmd_fault(args: argparse.Namespace) -> int:
    _maybe_enable_stats(args)
    net = _load_network(args.file)
    symbolics = _parse_symbolics(args.symbolic, net)
    if args.smt:
        from .analysis.fault import fault_tolerance_smt

        if symbolics:
            print("note: --symbolic ignored with --smt (failure bits are "
                  "the symbolics)", file=sys.stderr)
        smt_report = fault_tolerance_smt(
            net, num_link_failures=args.links,
            incremental=args.incremental, portfolio=args.portfolio,
            jobs=args.jobs)
        print(smt_report.summary())
        for s in smt_report.scenarios:
            if s.status != "verified":
                print(f"  scenario failed={list(s.failed_links)}: {s.status}")
        if args.stats:
            print(perf.report())
        return 0 if smt_report.fault_tolerant else 1
    drop_body = parse_expr(args.drop) if args.drop else None
    report = fault_tolerance_sharded(
        net, symbolics, num_link_failures=args.links,
        node_failures=args.nodes, with_witnesses=args.witnesses,
        drop_body=drop_body, jobs=parallel.resolve_jobs(args.jobs))
    print(report.summary())
    for node, witness in sorted(report.witnesses.items()):
        print(f"  node {node} violates under failure scenario {witness}")
    if args.stats:
        print(perf.report())
    return 0 if report.fault_tolerant else 1


def cmd_translate(args: argparse.Namespace) -> int:
    from .frontend.configs import parse_config
    from .frontend.to_nv import translate

    directory = Path(args.configs)
    files = sorted(directory.glob("*.cfg")) + sorted(directory.glob("*.conf"))
    if not files:
        raise SystemExit(f"no .cfg/.conf files in {directory}")
    configs = [parse_config(f.stem, f.read_text()) for f in files]
    translation = translate(configs, assert_prefix=args.assert_prefix)
    if args.output:
        Path(args.output).write_text(translation.source)
        print(f"wrote {args.output}")
    else:
        print(translation.source)
    print(f"// routers: {translation.node_of}", file=sys.stderr)
    print(f"// links:   {translation.links}", file=sys.stderr)
    print(f"// prefixes: {len(translation.prefix_ids)} interned",
          file=sys.stderr)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``repro report trace.jsonl``: render a self-contained HTML run
    report from a ``--trace-json`` file and an optional ``--metrics-json``
    snapshot.  ``--critical-path`` additionally prints the trace's
    critical-path analysis (longest dependency chain vs total work,
    parallel efficiency, LPT-bound gap) as text."""
    from .report import generate, load_trace

    trace = Path(args.trace_file)
    if not trace.exists():
        raise SystemExit(f"no such trace file: {trace}")
    out = generate(trace, metrics_path=args.metrics,
                   out_path=args.output, title=args.title)
    print(f"wrote {out}")
    if getattr(args, "critical_path", False):
        from . import critpath

        roots, _events = load_trace(trace)
        rep = critpath.analyze(roots)
        if rep is None:
            print("critical path: trace contains no spans")
        else:
            print(critpath.render_text(rep))
    return 0


def cmd_runs(args: argparse.Namespace) -> int:
    """``repro runs list|show|diff``: the perf-observatory surface over the
    ``.nv-runs/`` RunRecord store (see :mod:`repro.observatory`)."""
    from . import observatory

    store = observatory.RunStore(args.runs_dir)
    if args.runs_command == "list":
        records = store.list()
        if not records:
            print(f"no runs recorded in {store.root}/")
            return 0
        for r in records:
            engine = r.env.get("engine") or "?"
            print(f"{r.run_id:<44} {r.label:<24} {engine:<7} "
                  f"{len(r.timings)} timings, {len(r.counters)} counters")
        return 0
    try:
        if args.runs_command == "show":
            print(observatory.describe(store.resolve(args.ref)))
            return 0
        # diff
        rec_a = store.resolve(args.ref_a)
        rec_b = store.resolve(args.ref_b)
    except KeyError as exc:
        raise SystemExit(f"error: {exc.args[0]}")
    deltas = observatory.diff_records(rec_a, rec_b)
    print(f"A: {rec_a.run_id}  ({rec_a.label})")
    print(f"B: {rec_b.run_id}  ({rec_b.label})")
    mismatched = [k for k in sorted(set(rec_a.env) | set(rec_b.env))
                  if rec_a.env.get(k) != rec_b.env.get(k)]
    if mismatched:
        print("note: environment differs on " + ", ".join(
            f"{k} ({rec_a.env.get(k)} vs {rec_b.env.get(k)})"
            for k in mismatched))
    print(observatory.diff_table(deltas, only_interesting=not args.all))
    if args.html:
        from .report import generate_diff
        out = generate_diff(rec_a, rec_b, args.html)
        print(f"wrote {out}")
    if args.gate:
        gated = observatory.regressions(deltas)
        if gated:
            print(f"GATE: {len(gated)} counter metrics regressed beyond "
                  "tolerance", file=sys.stderr)
            return 1
        print("gate: no counter regressions beyond tolerance")
    return 0


def _save_run_record(args: argparse.Namespace, wall_seconds: float) -> None:
    """Persist a RunRecord of this CLI run (``--record [LABEL]``).  Called
    while the perf/metrics registries are still live.  When the run also
    wrote a ``--trace-json`` file, its critical-path analysis lands in the
    record as ``parallel.*`` gauges, so ``repro runs diff`` tracks parallel
    efficiency across runs."""
    from . import observatory

    record = observatory.capture(
        args.record or args.command,
        timings={f"{args.command}.wall_seconds": [wall_seconds]},
        trace_path=getattr(args, "trace_json", None),
        meta={"command": args.command,
              "file": getattr(args, "file", None)})
    trace_json = getattr(args, "trace_json", None)
    if trace_json:
        try:
            from . import critpath
            from .report import load_trace

            roots, _events = load_trace(trace_json)
            rep = critpath.analyze(roots)
            if rep is not None:
                record.gauges.update(rep.gauges())
        except OSError:  # pragma: no cover - unreadable trace
            pass
    path = observatory.RunStore(getattr(args, "runs_dir", None)).save(record)
    print(f"recorded {record.run_id} -> {path}", file=sys.stderr)


def _add_obs_args(p: argparse.ArgumentParser) -> None:
    """The shared observability flags of every analysis subcommand."""
    p.add_argument("--stats", action="store_true",
                   help="collect and print repro.perf counters "
                        "(cache hit rates, work done)")
    p.add_argument("--trace", action="store_true",
                   help="print a hierarchical span tree of the run "
                        "(pipeline passes, simulation, SMT phases) with "
                        "per-span counter deltas")
    p.add_argument("--trace-json", metavar="FILE", default=None,
                   help="stream structured span/event records (JSONL) "
                        "to FILE; implies tracing")
    p.add_argument("--progress", action="store_true",
                   help="render a live one-line status to stderr while the "
                        "analysis runs (heartbeat sampler)")
    p.add_argument("--heartbeat", type=float, metavar="SECONDS", default=None,
                   help="heartbeat sampling period in seconds "
                        "(default 1.0 when --progress is set); progress "
                        "events land in the --trace-json timeline")
    p.add_argument("--metrics-json", metavar="FILE", default=None,
                   help="write the final counters/gauges/histograms "
                        "snapshot as JSON to FILE")
    p.add_argument("--prometheus", metavar="FILE", default=None,
                   help="write the final snapshot in Prometheus text "
                        "exposition format to FILE")
    p.add_argument("--mem", action="store_true",
                   help="account memory with tracemalloc: per-span "
                        "high-water marks plus traced-bytes gauges")
    p.add_argument("--time-budget", type=float, metavar="SECONDS",
                   default=None,
                   help="warn (once) when the run exceeds this wall-time "
                        "budget")
    p.add_argument("--record", nargs="?", const="", default=None,
                   metavar="LABEL",
                   help="persist a RunRecord of this run (env fingerprint, "
                        "timings, counters, gauges) to the .nv-runs/ store "
                        "for later `repro runs diff`; LABEL defaults to the "
                        "command name")
    p.add_argument("--runs-dir", default=None, metavar="DIR",
                   help="RunRecord store directory (default: $NV_RUNS_DIR, "
                        "else .nv-runs/)")


def _add_jobs_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", type=int, default=None, metavar="N",
                   help="worker processes for sharded analyses "
                        "(default: $NV_JOBS, else CPU count capped at "
                        f"{parallel.MAX_DEFAULT_JOBS}; 1 = serial)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NV control-plane analyses (PLDI 2020 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="compute the stable state")
    simulate.add_argument("file", nargs="+",
                          help="NV source file(s); several files (e.g. one "
                               "per destination prefix) shard across "
                               "--jobs worker processes")
    simulate.add_argument("--native", action="store_true",
                          help="compile NV to Python first (§5.1)")
    simulate.add_argument("--symbolic", action="append", default=[],
                          metavar="NAME=VALUE")
    simulate.add_argument("--show-routes", action="store_true")
    simulate.add_argument("--max-nodes", type=int, default=50)
    simulate.add_argument("--lower", action=argparse.BooleanOptionalAction,
                          default=None,
                          help="run the value-preserving §5.2 passes "
                               "(inline + partial-eval) before simulating "
                               "(default: only under --trace)")
    _add_obs_args(simulate)
    _add_jobs_arg(simulate)
    simulate.set_defaults(fn=cmd_simulate)

    verify = sub.add_parser("verify", help="SMT verification over all "
                            "stable states and symbolic values")
    verify.add_argument("file", nargs="+",
                        help="NV source file(s); several files run as "
                             "independent queries sharded across --jobs "
                             "worker processes")
    verify.add_argument("--max-conflicts", type=int, default=None)
    verify.add_argument("--show-routes", action="store_true")
    verify.add_argument("--portfolio", type=int, default=1, metavar="K",
                        help="race K diversified CDCL strategies on a "
                             "query; first answer wins, losers are "
                             "cancelled")
    verify.add_argument("--incremental",
                        action=argparse.BooleanOptionalAction, default=True,
                        help="with several files: decide them as one "
                             "shared-encoding batch on a persistent "
                             "assumption-based solver (default); "
                             "--no-incremental falls back to one fresh "
                             "solver per query, sharded across --jobs")
    verify.add_argument("--partition", type=int, default=None, metavar="K",
                        help="modular verification: cut the network into K "
                             "fragments, verify them in parallel across "
                             "--jobs workers and discharge the interface "
                             "annotations (inferred from simulation unless "
                             "--cuts provides them)")
    verify.add_argument("--cuts", default=None, metavar="FILE",
                        help="modular verification from a JSON cut file "
                             "(fragments or cut_links + per-edge interface "
                             "annotations; see README 'Modular "
                             "verification')")
    verify.add_argument("--partition-method", default=None,
                        choices=["auto", "pods", "bfs", "spectral"],
                        help="automatic cut heuristic for --partition "
                             "(default auto: fat-tree pods when role "
                             "metadata exists, else spectral bisection); "
                             "giving a method implies modular verification "
                             "even without --partition")
    verify.add_argument("--symbolic", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="concrete symbolic values for partition "
                             "interface inference (the simulation pass "
                             "needs them; fragment SMT still explores all "
                             "assignments)")
    _add_obs_args(verify)
    _add_jobs_arg(verify)
    verify.set_defaults(fn=cmd_verify)

    fault = sub.add_parser("fault", help="fault-tolerance meta-protocol (fig 5)")
    fault.add_argument("file")
    fault.add_argument("--links", type=int, default=1,
                       help="simultaneous link failures (default 1)")
    fault.add_argument("--nodes", action="store_true",
                       help="also fail one node per scenario")
    fault.add_argument("--witnesses", action="store_true")
    fault.add_argument("--symbolic", action="append", default=[],
                       metavar="NAME=VALUE")
    fault.add_argument("--drop", default=None,
                       help="NV expression for the dropped route (default None)")
    fault.add_argument("--smt", action="store_true",
                       help="check each failure scenario by SMT (fig 13a "
                            "encoding) instead of the MTBDD meta-protocol; "
                            "scenarios flip fail-bit assumptions on a "
                            "persistent solver")
    fault.add_argument("--incremental",
                       action=argparse.BooleanOptionalAction, default=True,
                       help="with --smt: reuse one persistent solver across "
                            "scenarios (default); --no-incremental re-solves "
                            "each scenario from scratch")
    fault.add_argument("--portfolio", type=int, default=1, metavar="K",
                       help="with --smt: race K CDCL strategies per scenario")
    _add_obs_args(fault)
    _add_jobs_arg(fault)
    fault.set_defaults(fn=cmd_fault)

    explain = sub.add_parser(
        "explain", help="provenance: why did NODE's stable route win?")
    explain.add_argument("file")
    explain.add_argument("node", type=int,
                         help="node whose stable route to explain")
    explain.add_argument("--native", action="store_true",
                         help="compile NV to Python first (§5.1)")
    explain.add_argument("--symbolic", action="append", default=[],
                         metavar="NAME=VALUE")
    _add_obs_args(explain)
    explain.set_defaults(fn=cmd_explain)

    translate = sub.add_parser("translate",
                               help="router configs -> NV program (§4)")
    translate.add_argument("configs", help="directory of .cfg/.conf files")
    translate.add_argument("--assert-prefix", default=None,
                           metavar="A.B.C.D/LEN")
    translate.add_argument("-o", "--output", default=None)
    translate.set_defaults(fn=cmd_translate)

    report = sub.add_parser(
        "report", help="render a trace JSONL (+ metrics snapshot) as a "
                       "self-contained HTML run report")
    report.add_argument("trace_file", metavar="trace",
                        help="trace JSONL file (--trace-json output)")
    report.add_argument("--metrics", metavar="FILE", default=None,
                        help="metrics snapshot JSON (--metrics-json output)")
    report.add_argument("-o", "--output", default=None,
                        help="output HTML path (default: trace with .html)")
    report.add_argument("--title", default=None,
                        help="report title (default: trace file name)")
    report.add_argument("--critical-path", action="store_true",
                        help="also print the critical-path analysis "
                             "(longest dependency chain, parallel "
                             "efficiency, LPT-bound gap) as text")
    report.set_defaults(fn=cmd_report)

    runs = sub.add_parser(
        "runs", help="perf observatory: list, inspect and diff recorded "
                     "RunRecords (.nv-runs/)")
    runs.add_argument("--runs-dir", default=None, metavar="DIR",
                      help="RunRecord store directory (default: "
                           "$NV_RUNS_DIR, else .nv-runs/)")
    rsub = runs.add_subparsers(dest="runs_command", required=True)
    rlist = rsub.add_parser("list", help="all recorded runs, oldest first")
    rlist.set_defaults(fn=cmd_runs)
    rshow = rsub.add_parser("show", help="one run in full")
    rshow.add_argument("ref", help="run id, unique id prefix, or label "
                                   "(latest run with that label)")
    rshow.set_defaults(fn=cmd_runs)
    rdiff = rsub.add_parser(
        "diff", help="noise-aware comparison of two runs")
    rdiff.add_argument("ref_a", metavar="A", help="baseline run ref")
    rdiff.add_argument("ref_b", metavar="B", help="candidate run ref")
    rdiff.add_argument("--all", action="store_true",
                       help="include within-tolerance rows in the table")
    rdiff.add_argument("--html", metavar="FILE", default=None,
                       help="also write a side-by-side HTML report "
                            "(flame charts + delta tables)")
    rdiff.add_argument("--gate", action="store_true",
                       help="exit 1 if any counter regresses beyond "
                            "tolerance (the check_regression.py semantics)")
    rdiff.set_defaults(fn=cmd_runs)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    tracing = _tracing(args)
    metrics_on = _metrics_on(args)
    recording = getattr(args, "record", None) is not None
    if recording and not tracing and not getattr(args, "stats", False):
        # A RunRecord without counters is an empty record; --record implies
        # the perf registry even when no other flag turned it on.
        perf.reset()
        perf.enable()
    if tracing:
        # Spans carry perf-counter deltas, so tracing turns the counter
        # registry on as well (a later --stats reset is harmless: nothing
        # has accumulated yet).
        obs.reset()
        obs.enable(jsonl=args.trace_json)
        perf.reset()
        perf.enable()
    if metrics_on:
        # Live gauges/histograms need the counter registry too (rates are
        # derived from perf deltas).
        if not tracing and not getattr(args, "stats", False):
            perf.reset()
            perf.enable()
        metrics.reset()
        metrics.enable(memory=getattr(args, "mem", False))
        if getattr(args, "mem", False):
            obs.track_memory(True)

    heartbeat = None
    if _heartbeat_on(args):
        from .heartbeat import Heartbeat
        period = args.heartbeat if args.heartbeat is not None else 1.0
        heartbeat = Heartbeat(
            period, progress=getattr(args, "progress", False),
            label=args.command, budget=getattr(args, "time_budget", None),
            metrics_json=getattr(args, "metrics_json", None),
            install_sigint=True)
        heartbeat.start()

    file_attr = getattr(args, "file", None)
    if isinstance(file_attr, list):
        file_attr = file_attr[0] if len(file_attr) == 1 else ",".join(file_attr)
    try:
        t_run0 = perf_counter()
        with obs.span(args.command, file=file_attr):
            rc = args.fn(args)
        wall_seconds = perf_counter() - t_run0
        if heartbeat is not None:
            heartbeat.stop()
            heartbeat = None
        if metrics_on:
            _write_metrics_outputs(args)
        if recording:
            # After the metrics exports (same final snapshot) but before
            # the registries are disabled in the finally block.
            obs.flush()
            _save_run_record(args, wall_seconds)
        return rc
    except KeyboardInterrupt:
        # The heartbeat's SIGINT handler already dumped partial state (or
        # there was no heartbeat and there is nothing to dump beyond the
        # trace flush in the finally block below).
        if heartbeat is not None:
            heartbeat.dump_partial()
        print("interrupted", file=sys.stderr)
        return 130
    except NvError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        if metrics_on:
            metrics.disable()
            obs.track_memory(False)
        if tracing:
            obs.disable()
            if getattr(args, "trace", False):
                print(obs.render_tree())


def _write_metrics_outputs(args: argparse.Namespace) -> None:
    """Export the final snapshot to the requested files (one snapshot, both
    formats)."""
    mjson = getattr(args, "metrics_json", None)
    prom = getattr(args, "prometheus", None)
    if not mjson and not prom:
        return
    snap = metrics.snapshot()
    if mjson:
        metrics.write_json(mjson, snap)
    if prom:
        metrics.write_prometheus(prom, snap)


if __name__ == "__main__":
    raise SystemExit(main())
