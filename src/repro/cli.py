"""Command-line interface: ``python -m repro <command> ...``.

Mirrors the original artifact's ``nv`` binary: point it at an NV source file
(or a directory of router configurations) and pick an analysis.

    python -m repro simulate network.nv [--native] [--symbolic name=value ...]
    python -m repro verify network.nv
    python -m repro fault network.nv [--links N] [--nodes] [--witnesses]
    python -m repro translate configs_dir/ [--assert-prefix A.B.C.D/L] [-o out.nv]

Symbolic values on the command line use NV literal syntax
(``--symbolic route=None``, ``--symbolic x=5u8``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any

from . import perf
from .analysis.fault import fault_tolerance_analysis
from .analysis.simulation import run_simulation
from .analysis.verify import verify as smt_verify
from .eval.interp import Interpreter
from .eval.maps import MapContext
from .eval.values import value_repr
from .lang.errors import NvError
from .lang.parser import parse_expr, parse_program
from .lang.typecheck import check_program
from .protocols import resolve
from .srp.network import Network


def _load_network(path: str) -> Network:
    source = Path(path).read_text()
    return Network.from_program(parse_program(source, resolve))


def _parse_symbolics(pairs: list[str], net: Network) -> dict[str, Any]:
    """Evaluate `name=<nv literal>` bindings in the network's context."""
    out: dict[str, Any] = {}
    interp = Interpreter(MapContext(net.num_nodes, net.edges))
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--symbolic expects name=value, got {pair!r}")
        name, text = pair.split("=", 1)
        expr = parse_expr(text)
        from .lang import ast as A
        program = A.Program([A.DLet("__cli", expr)])
        check_program(program)
        out[name] = interp.eval(expr)
    return out


def _maybe_enable_stats(args: argparse.Namespace) -> None:
    """``--stats`` turns on the :mod:`repro.perf` registry for this run."""
    if getattr(args, "stats", False):
        perf.reset()
        perf.enable()


def cmd_simulate(args: argparse.Namespace) -> int:
    _maybe_enable_stats(args)
    net = _load_network(args.file)
    symbolics = _parse_symbolics(args.symbolic, net)
    report = run_simulation(net, symbolics,
                            backend="native" if args.native else "interp")
    print(report.summary())
    if args.show_routes:
        print(report.solution.pretty(max_nodes=args.max_nodes))
    if report.violations:
        print(f"assertion violated at nodes: {report.violations}")
        return 1
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    _maybe_enable_stats(args)
    net = _load_network(args.file)
    result = smt_verify(net, max_conflicts=args.max_conflicts)
    print(result.summary())
    if args.stats:
        print(perf.report())
    if result.status == "counterexample":
        for name, value in result.counterexample.items():
            print(f"  symbolic {name} = {value_repr(value)}")
        if args.show_routes:
            for node, attr in sorted(result.node_attrs.items()):
                print(f"  node {node}: {value_repr(attr)}")
        return 1
    return 0 if result.verified else 2


def cmd_fault(args: argparse.Namespace) -> int:
    _maybe_enable_stats(args)
    net = _load_network(args.file)
    symbolics = _parse_symbolics(args.symbolic, net)
    drop_body = parse_expr(args.drop) if args.drop else None
    report = fault_tolerance_analysis(
        net, symbolics, num_link_failures=args.links,
        node_failures=args.nodes, with_witnesses=args.witnesses,
        drop_body=drop_body)
    print(report.summary())
    for node, witness in sorted(report.witnesses.items()):
        print(f"  node {node} violates under failure scenario {witness}")
    if args.stats:
        print(perf.report())
    return 0 if report.fault_tolerant else 1


def cmd_translate(args: argparse.Namespace) -> int:
    from .frontend.configs import parse_config
    from .frontend.to_nv import translate

    directory = Path(args.configs)
    files = sorted(directory.glob("*.cfg")) + sorted(directory.glob("*.conf"))
    if not files:
        raise SystemExit(f"no .cfg/.conf files in {directory}")
    configs = [parse_config(f.stem, f.read_text()) for f in files]
    translation = translate(configs, assert_prefix=args.assert_prefix)
    if args.output:
        Path(args.output).write_text(translation.source)
        print(f"wrote {args.output}")
    else:
        print(translation.source)
    print(f"// routers: {translation.node_of}", file=sys.stderr)
    print(f"// links:   {translation.links}", file=sys.stderr)
    print(f"// prefixes: {len(translation.prefix_ids)} interned",
          file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="NV control-plane analyses (PLDI 2020 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="compute the stable state")
    simulate.add_argument("file")
    simulate.add_argument("--native", action="store_true",
                          help="compile NV to Python first (§5.1)")
    simulate.add_argument("--symbolic", action="append", default=[],
                          metavar="NAME=VALUE")
    simulate.add_argument("--show-routes", action="store_true")
    simulate.add_argument("--max-nodes", type=int, default=50)
    simulate.add_argument("--stats", action="store_true",
                          help="collect and print repro.perf counters "
                               "(cache hit rates, work done)")
    simulate.set_defaults(fn=cmd_simulate)

    verify = sub.add_parser("verify", help="SMT verification over all "
                            "stable states and symbolic values")
    verify.add_argument("file")
    verify.add_argument("--max-conflicts", type=int, default=None)
    verify.add_argument("--show-routes", action="store_true")
    verify.add_argument("--stats", action="store_true",
                        help="collect and print repro.perf counters")
    verify.set_defaults(fn=cmd_verify)

    fault = sub.add_parser("fault", help="fault-tolerance meta-protocol (fig 5)")
    fault.add_argument("file")
    fault.add_argument("--links", type=int, default=1,
                       help="simultaneous link failures (default 1)")
    fault.add_argument("--nodes", action="store_true",
                       help="also fail one node per scenario")
    fault.add_argument("--witnesses", action="store_true")
    fault.add_argument("--symbolic", action="append", default=[],
                       metavar="NAME=VALUE")
    fault.add_argument("--drop", default=None,
                       help="NV expression for the dropped route (default None)")
    fault.add_argument("--stats", action="store_true",
                       help="collect and print repro.perf counters")
    fault.set_defaults(fn=cmd_fault)

    translate = sub.add_parser("translate",
                               help="router configs -> NV program (§4)")
    translate.add_argument("configs", help="directory of .cfg/.conf files")
    translate.add_argument("--assert-prefix", default=None,
                           metavar="A.B.C.D/LEN")
    translate.add_argument("-o", "--output", default=None)
    translate.set_defaults(fn=cmd_translate)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except NvError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    raise SystemExit(main())
