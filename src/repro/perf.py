"""Lightweight performance counters and timers (``repro.perf``).

The paper's evaluation (§6) rests on two hot paths: the simulation worklist
and the MTBDD engine.  This module gives every layer a *zero-dependency* way
to report work done — cache hits, activations, SAT conflicts — without
polluting return types or paying for instrumentation when it is off.

Design rules (enforced by the unit tests):

* **Near-zero overhead when disabled.**  Hot loops never call into this
  module directly; components accumulate plain local integers and *flush*
  them once per top-level operation via :func:`merge`, which is a no-op when
  disabled.  The only always-on cost is integer attribute increments inside
  the components themselves.
* **Snapshot isolation.**  :func:`snapshot` returns a plain dict copy;
  mutating it (or incrementing counters afterwards) never affects previously
  taken snapshots.
* **Nesting.**  :func:`enabled` is a re-entrant context manager that saves
  and restores the previous enabled state, so analyses can be composed.

Counter naming convention: ``<layer>.<metric>``, e.g. ``sim.activations``,
``bdd.op_cache_hits``, ``sat.conflicts``.  Derived hit rates are computed by
:func:`report` from ``*_hits``/``*_misses`` pairs.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator, Mapping

_enabled: bool = False
_counters: dict[str, int] = {}
_timers: dict[str, float] = {}
#: Guards every registry mutation and :func:`snapshot`.  Components flush
#: rarely (once per run), but the heartbeat sampler thread snapshots
#: concurrently — without the lock a ``dict(_counters)`` copy racing a
#: ``merge`` can raise ``RuntimeError: dictionary changed size during
#: iteration``.  The hot paths never touch this lock (they accumulate
#: plain local integers), so the design rule above still holds.
_lock = threading.RLock()


def enable() -> None:
    """Turn the global registry on (counters start accumulating)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the global registry off (flushes become no-ops)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


@contextmanager
def enabled(on: bool = True) -> Iterator[None]:
    """Context manager: set the enabled state, restoring the previous one on
    exit.  Nests arbitrarily."""
    global _enabled
    prev = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = prev


def reset() -> None:
    """Clear all accumulated counters and timers (enabled state unchanged)."""
    with _lock:
        _counters.clear()
        _timers.clear()


def incr(name: str, n: int = 1) -> None:
    """Add ``n`` to a counter.  No-op when disabled."""
    if _enabled:
        with _lock:
            _counters[name] = _counters.get(name, 0) + n


def merge(stats: Mapping[str, int | float], prefix: str = "") -> None:
    """Flush a component's locally-accumulated stats into the registry.

    This is the hot-path-friendly entry point: the component does plain
    integer arithmetic while running and calls ``merge`` once at the end.
    No-op when disabled.  Thread-safe: concurrent merges (and snapshots
    from the heartbeat sampler) serialize on the registry lock.
    """
    if not _enabled:
        return
    with _lock:
        get = _counters.get
        for key, value in stats.items():
            name = prefix + key
            if isinstance(value, float):
                _timers[name] = _timers.get(name, 0.0) + value
            else:
                _counters[name] = get(name, 0) + value


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate wall-clock seconds under ``name``.  No-op when disabled."""
    if not _enabled:
        yield
        return
    t0 = perf_counter()
    try:
        yield
    finally:
        with _lock:
            _timers[name] = _timers.get(name, 0.0) + (perf_counter() - t0)


def snapshot() -> dict[str, int | float]:
    """An isolated copy of every counter and timer currently accumulated."""
    with _lock:
        out: dict[str, int | float] = dict(_counters)
        out.update(_timers)
    return out


def hit_rate(stats: Mapping[str, int | float], base: str) -> float | None:
    """The hit rate of a ``<base>_hits``/``<base>_misses`` counter pair, or
    None if the pair is absent/empty."""
    hits = stats.get(base + "_hits")
    misses = stats.get(base + "_misses")
    if hits is None and misses is None:
        return None
    total = (hits or 0) + (misses or 0)
    if total == 0:
        return None
    return (hits or 0) / total


def report(stats: Mapping[str, int | float] | None = None) -> str:
    """Human-readable rendering of a snapshot, with derived cache hit rates.

    ``stats`` defaults to the live registry contents.  Counters are grouped
    by their ``<layer>.`` prefix; within each group, plain counters come
    first, then that group's derived hit rates, then its timers — so a
    layer's work and where its time went read as one block instead of being
    interleaved alphabetically across layers.  Value columns widen to fit
    (no more overflowing ``{:12d}`` fields once counters pass 1e12) and use
    thousands separators.
    """
    if stats is None:
        stats = snapshot()
    if not stats:
        return "perf: no counters recorded (is repro.perf enabled?)"

    groups: dict[str, list[str]] = {}
    for name in stats:
        layer = name.split(".", 1)[0] if "." in name else "(other)"
        groups.setdefault(layer, []).append(name)

    name_w = max(max(len(n) + 9 for n in stats), 40)  # room for " hit rate"
    val_w = max((len(f"{v:,d}") for v in stats.values()
                 if not isinstance(v, float)), default=0)
    val_w = max(val_w, 12)

    lines = ["perf counters:"]
    for layer in sorted(groups):
        names = sorted(groups[layer])
        counters = [n for n in names if not isinstance(stats[n], float)]
        timers = [n for n in names if isinstance(stats[n], float)]
        lines.append(f"  {layer}:")
        for n in counters:
            lines.append(f"    {n:<{name_w}s} {stats[n]:>{val_w},d}")
        seen: set[str] = set()
        for n in counters:
            for suffix in ("_hits", "_misses"):
                if n.endswith(suffix):
                    base = n[: -len(suffix)]
                    if base not in seen:
                        seen.add(base)
                        rate = hit_rate(stats, base)
                        if rate is not None:
                            lines.append(f"    {base + ' hit rate':<{name_w}s}"
                                         f" {rate:>{val_w - 1}.1%}")
        for n in timers:
            lines.append(f"    {n:<{name_w}s} {stats[n]:>{val_w}.6f}s")
    return "\n".join(lines)
