"""Lightweight performance counters and timers (``repro.perf``).

The paper's evaluation (§6) rests on two hot paths: the simulation worklist
and the MTBDD engine.  This module gives every layer a *zero-dependency* way
to report work done — cache hits, activations, SAT conflicts — without
polluting return types or paying for instrumentation when it is off.

Design rules (enforced by the unit tests):

* **Near-zero overhead when disabled.**  Hot loops never call into this
  module directly; components accumulate plain local integers and *flush*
  them once per top-level operation via :func:`merge`, which is a no-op when
  disabled.  The only always-on cost is integer attribute increments inside
  the components themselves.
* **Snapshot isolation.**  :func:`snapshot` returns a plain dict copy;
  mutating it (or incrementing counters afterwards) never affects previously
  taken snapshots.
* **Nesting.**  :func:`enabled` is a re-entrant context manager that saves
  and restores the previous enabled state, so analyses can be composed.

Counter naming convention: ``<layer>.<metric>``, e.g. ``sim.activations``,
``bdd.op_cache_hits``, ``sat.conflicts``.  Derived hit rates are computed by
:func:`report` from ``*_hits``/``*_misses`` pairs.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator, Mapping

_enabled: bool = False
_counters: dict[str, int] = {}
_timers: dict[str, float] = {}


def enable() -> None:
    """Turn the global registry on (counters start accumulating)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn the global registry off (flushes become no-ops)."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


@contextmanager
def enabled(on: bool = True) -> Iterator[None]:
    """Context manager: set the enabled state, restoring the previous one on
    exit.  Nests arbitrarily."""
    global _enabled
    prev = _enabled
    _enabled = on
    try:
        yield
    finally:
        _enabled = prev


def reset() -> None:
    """Clear all accumulated counters and timers (enabled state unchanged)."""
    _counters.clear()
    _timers.clear()


def incr(name: str, n: int = 1) -> None:
    """Add ``n`` to a counter.  No-op when disabled."""
    if _enabled:
        _counters[name] = _counters.get(name, 0) + n


def merge(stats: Mapping[str, int | float], prefix: str = "") -> None:
    """Flush a component's locally-accumulated stats into the registry.

    This is the hot-path-friendly entry point: the component does plain
    integer arithmetic while running and calls ``merge`` once at the end.
    No-op when disabled.
    """
    if not _enabled:
        return
    get = _counters.get
    for key, value in stats.items():
        name = prefix + key
        if isinstance(value, float):
            _timers[name] = _timers.get(name, 0.0) + value
        else:
            _counters[name] = get(name, 0) + value


@contextmanager
def timer(name: str) -> Iterator[None]:
    """Accumulate wall-clock seconds under ``name``.  No-op when disabled."""
    if not _enabled:
        yield
        return
    t0 = perf_counter()
    try:
        yield
    finally:
        _timers[name] = _timers.get(name, 0.0) + (perf_counter() - t0)


def snapshot() -> dict[str, int | float]:
    """An isolated copy of every counter and timer currently accumulated."""
    out: dict[str, int | float] = dict(_counters)
    out.update(_timers)
    return out


def hit_rate(stats: Mapping[str, int | float], base: str) -> float | None:
    """The hit rate of a ``<base>_hits``/``<base>_misses`` counter pair, or
    None if the pair is absent/empty."""
    hits = stats.get(base + "_hits")
    misses = stats.get(base + "_misses")
    if hits is None and misses is None:
        return None
    total = (hits or 0) + (misses or 0)
    if total == 0:
        return None
    return (hits or 0) / total


def report(stats: Mapping[str, int | float] | None = None) -> str:
    """Human-readable rendering of a snapshot, with derived cache hit rates.

    ``stats`` defaults to the live registry contents.
    """
    if stats is None:
        stats = snapshot()
    if not stats:
        return "perf: no counters recorded (is repro.perf enabled?)"
    lines = ["perf counters:"]
    for name in sorted(stats):
        value = stats[name]
        if isinstance(value, float):
            lines.append(f"  {name:<40s} {value:12.6f}s")
        else:
            lines.append(f"  {name:<40s} {value:12d}")
    rates = []
    seen = set()
    for name in sorted(stats):
        for suffix in ("_hits", "_misses"):
            if name.endswith(suffix):
                base = name[: -len(suffix)]
                if base not in seen:
                    seen.add(base)
                    rate = hit_rate(stats, base)
                    if rate is not None:
                        rates.append(f"  {base + ' hit rate':<40s} {rate:11.1%}")
    if rates:
        lines.append("derived:")
        lines.extend(rates)
    return "\n".join(lines)
