"""Background progress heartbeat for long-running analyses.

The paper's evaluation phases — CDCL solves that spin for minutes, MTBDD
fixpoints whose unique tables balloon — are opaque while they run.  The
:class:`Heartbeat` fixes that with a daemon sampler thread that, every
``period`` seconds:

* snapshots the :mod:`repro.perf` counters and :mod:`repro.metrics` gauges
  (live solver/simulator/BDD state, sampled via registered providers);
* computes **rates** from the deltas since the previous tick
  (``sat.conflicts_per_sec``, ``sim.activations_per_sec``,
  ``bdd.apply_ops_per_sec``, ...);
* emits a ``progress`` event into the :mod:`repro.obs` trace timeline, so a
  ``--trace-json`` file interleaves heartbeats with the run's spans;
* optionally renders a one-line status to stderr (``--progress``);
* warns (once per phase) when the current :func:`repro.metrics.phase`
  exceeds its wall-time budget, and when the heartbeat's own overall
  ``budget`` is exceeded.

On SIGINT the heartbeat dumps the **partial** trace (open spans flushed via
``obs.flush_partial``) and a partial metrics snapshot before the default
``KeyboardInterrupt`` machinery runs, so a killed multi-minute solve still
leaves an analysable record — exactly the "know where state explosion
happens while it happens" discipline of the fast symbolic engines in
PAPERS.md.

The thread only exists while a heartbeat is started; the disabled-mode cost
of this module is zero (nothing imports it on the hot path).
"""

from __future__ import annotations

import signal
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, TextIO

from . import metrics, obs, perf

#: Counter/gauge names whose per-second rates are derived each tick.
RATE_KEYS: tuple[str, ...] = (
    "sat.conflicts", "sat.decisions", "sat.propagations",
    "sim.activations", "sim.messages",
    "bdd.apply_ops", "bdd.op_ops", "bdd.nodes",
)

#: Gauges surfaced verbatim on progress events / the status line.
STATUS_GAUGES: tuple[str, ...] = (
    "sat.learnts", "sat.clause_db", "sat.trail",
    "sim.worklist_depth", "sim.interned_routes",
    "bdd.nodes", "bdd.op_cache_entries",
    "parallel.units_done", "parallel.units_total",
    "parallel.workers", "parallel.workers_busy",
    "parallel.straggler_age_seconds", "parallel.straggler_worker",
    "proc.rss_bytes",
)

#: Default straggler threshold (seconds a busy worker may go without
#: reporting progress before the heartbeat warns); ``NV_STRAGGLER_SECONDS``
#: overrides it.
DEFAULT_STRAGGLER_SECONDS = 10.0


def straggler_threshold() -> float:
    """The configured straggler threshold (``NV_STRAGGLER_SECONDS``, else
    :data:`DEFAULT_STRAGGLER_SECONDS`); <= 0 disables the warning."""
    import os

    env = os.environ.get("NV_STRAGGLER_SECONDS", "").strip()
    if env:
        try:
            return float(env)
        except ValueError:
            pass
    return DEFAULT_STRAGGLER_SECONDS


def _fmt_count(v: float) -> str:
    if v >= 1e9:
        return f"{v / 1e9:.1f}G"
    if v >= 1e6:
        return f"{v / 1e6:.1f}M"
    if v >= 1e3:
        return f"{v / 1e3:.1f}k"
    if isinstance(v, float) and not v.is_integer():
        return f"{v:.2f}"
    return str(int(v))


class Heartbeat:
    """Periodic sampler of the live metrics registry.

    Use as a context manager or via :meth:`start`/:meth:`stop`.  ``stop``
    always emits one final tick, so even sub-period runs record at least one
    ``progress`` event.
    """

    def __init__(self, period: float = 1.0, *, progress: bool = False,
                 stream: TextIO | None = None, label: str = "run",
                 budget: float | None = None,
                 metrics_json: str | Path | None = None,
                 install_sigint: bool = False,
                 on_tick: Callable[[dict[str, Any]], None] | None = None,
                 straggler_after: float | None = None) -> None:
        self.period = max(0.005, float(period))
        self.progress = progress
        self.stream = stream
        self.label = label
        self.budget = budget
        self.metrics_json = metrics_json
        self.install_sigint = install_sigint
        self.on_tick = on_tick
        self.straggler_after = (straggler_threshold()
                                if straggler_after is None
                                else float(straggler_after))
        self._stragglers_warned: set[int] = set()
        self.ticks = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._t0 = 0.0
        self._prev: dict[str, float] = {}
        self._prev_t = 0.0
        self._budget_warned = False
        self._dumped = False
        self._prev_sigint: Any = None
        self._status_open = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "Heartbeat":
        if self._thread is not None:
            return self
        self._t0 = time.monotonic()
        self._prev_t = self._t0
        self._prev = self._numbers()
        self._stop.clear()
        if self.install_sigint and threading.current_thread() is threading.main_thread():
            self._prev_sigint = signal.getsignal(signal.SIGINT)
            signal.signal(signal.SIGINT, self._on_sigint)
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-heartbeat")
        self._thread.start()
        return self

    def stop(self) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=max(1.0, 4 * self.period))
        self._thread = None
        self.tick(final=True)
        if self._status_open:
            stream = self.stream or sys.stderr
            try:
                stream.write("\n")
                stream.flush()
            except (ValueError, OSError):  # pragma: no cover - closed stream
                pass
            self._status_open = False
        if self._prev_sigint is not None:
            try:
                signal.signal(signal.SIGINT, self._prev_sigint)
            except (ValueError, TypeError):  # pragma: no cover
                pass
            self._prev_sigint = None

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.period):
            try:
                self.tick()
            except Exception:  # pragma: no cover - sampler must never kill a run
                pass

    def _numbers(self) -> dict[str, float]:
        """The merged numeric view: perf counters overlaid with live gauges
        (fresher while a subsystem is mid-flight)."""
        merged: dict[str, float] = {}
        for k, v in perf.snapshot().items():
            merged[k] = float(v)
        gauges, _ = metrics.sample()
        # Derived op totals so rate keys exist even pre-flush.
        merged.update(gauges)
        return merged

    def tick(self, final: bool = False) -> dict[str, Any]:
        """One heartbeat sample: compute rates, emit the ``progress`` event,
        update the status line, check budgets.  Returns the sample dict."""
        now = time.monotonic()
        dt = max(1e-9, now - self._prev_t)
        elapsed = now - self._t0
        gauges, hists = metrics.sample()
        numbers: dict[str, float] = {}
        for k, v in perf.snapshot().items():
            numbers[k] = float(v)
        numbers.update(gauges)

        rates: dict[str, float] = {}
        for key in RATE_KEYS:
            cur = numbers.get(key)
            if cur is None:
                continue
            delta = cur - self._prev.get(key, 0.0)
            if delta < 0:  # registry reset mid-run; restart the window
                delta = 0.0
            rates[key + "_per_sec"] = round(delta / dt, 3)

        ph = metrics.current_phase()
        sample: dict[str, Any] = {
            "phase": ph[0] if ph else self.label,
            "elapsed": round(elapsed, 3),
            "tick": self.ticks,
        }
        if final:
            sample["final"] = True
        sample.update(rates)
        for key in STATUS_GAUGES:
            if key in gauges:
                sample[key] = gauges[key]
        for name, hist in hists.items():
            sample[name] = [[le, c] for le, c in hist.buckets()]

        obs.event("progress", **sample)
        if self.on_tick is not None:
            self.on_tick(sample)
        self._check_budgets(ph, elapsed)
        self._check_stragglers(sample)
        if self.progress:
            self._render_status(sample, elapsed)

        self._prev = numbers
        self._prev_t = now
        self.ticks += 1
        return sample

    # ------------------------------------------------------------------
    # Budgets and status line
    # ------------------------------------------------------------------

    def _check_budgets(self, ph: tuple[str, float, float | None, bool] | None,
                       elapsed: float) -> None:
        stream = self.stream or sys.stderr
        if ph is not None:
            name, phase_elapsed, budget, warned = ph
            if budget is not None and phase_elapsed > budget and not warned:
                metrics.mark_phase_warned()
                obs.event("progress.budget_exceeded", phase=name,
                          elapsed=round(phase_elapsed, 3), budget=budget)
                self._end_status(stream)
                print(f"[heartbeat] warning: phase {name!r} exceeded its "
                      f"{budget:.1f}s wall-time budget "
                      f"({phase_elapsed:.1f}s elapsed)", file=stream)
        if self.budget is not None and elapsed > self.budget \
                and not self._budget_warned:
            self._budget_warned = True
            obs.event("progress.budget_exceeded", phase=self.label,
                      elapsed=round(elapsed, 3), budget=self.budget)
            self._end_status(stream)
            print(f"[heartbeat] warning: {self.label} exceeded its "
                  f"{self.budget:.1f}s wall-time budget", file=stream)

    def _check_stragglers(self, sample: dict[str, Any]) -> None:
        """Warn (once per worker) when a busy pool worker has reported no
        progress for longer than the straggler threshold.  The age gauge
        comes from the pool's metrics provider, fed by the workers'
        streamed telemetry deltas — so the signal stays live even while a
        worker is stuck inside one long unit."""
        if self.straggler_after is None or self.straggler_after <= 0:
            return
        age = sample.get("parallel.straggler_age_seconds")
        if age is None or age <= self.straggler_after:
            return
        wid = int(sample.get("parallel.straggler_worker", -1))
        if wid in self._stragglers_warned:
            return
        self._stragglers_warned.add(wid)
        obs.event("progress.straggler", worker=wid, age=round(age, 3),
                  threshold=self.straggler_after)
        stream = self.stream or sys.stderr
        self._end_status(stream)
        print(f"[heartbeat] warning: worker {wid} has made no progress "
              f"for {age:.1f}s (straggler threshold "
              f"{self.straggler_after:.1f}s)", file=stream)

    def _render_status(self, sample: dict[str, Any], elapsed: float) -> None:
        stream = self.stream or sys.stderr
        parts = [f"[{sample['phase']}] {elapsed:6.1f}s"]
        for key, label in (("sat.conflicts_per_sec", "conflicts/s"),
                           ("sim.activations_per_sec", "activations/s"),
                           ("bdd.apply_ops_per_sec", "apply/s")):
            v = sample.get(key)
            if v:
                parts.append(f"{label} {_fmt_count(v)}")
        for key, label in (("sat.learnts", "learnts"),
                           ("sim.worklist_depth", "worklist"),
                           ("bdd.nodes", "bdd-nodes")):
            v = sample.get(key)
            if v is not None:
                parts.append(f"{label} {_fmt_count(v)}")
        total = sample.get("parallel.units_total")
        if total:
            done = sample.get("parallel.units_done", 0)
            parts.append(f"shards {int(done)}/{int(total)}")
        workers = sample.get("parallel.workers")
        if workers:
            busy = sample.get("parallel.workers_busy", 0)
            parts.append(f"workers {int(busy)}/{int(workers)}")
        rss = sample.get("proc.rss_bytes")
        if rss:
            parts.append(f"rss {rss / (1 << 20):.0f}MB")
        line = " | ".join(parts)
        try:
            if stream.isatty():
                stream.write("\r" + line + "\x1b[K")
                self._status_open = True
            else:
                stream.write(line + "\n")
            stream.flush()
        except (ValueError, OSError):  # pragma: no cover - closed stream
            pass

    def _end_status(self, stream: TextIO) -> None:
        if self._status_open:
            try:
                stream.write("\n")
            except (ValueError, OSError):  # pragma: no cover
                pass
            self._status_open = False

    # ------------------------------------------------------------------
    # SIGINT partial dump
    # ------------------------------------------------------------------

    def dump_partial(self) -> None:
        """Flush open spans into the trace sink and write a partial metrics
        snapshot.  Idempotent (SIGINT handler and CLI both call it)."""
        if self._dumped:
            return
        self._dumped = True
        obs.flush_partial()
        if self.metrics_json is not None:
            try:
                metrics.write_json(self.metrics_json, partial=True)
            except OSError:  # pragma: no cover - unwritable dump path
                pass

    def _on_sigint(self, signum: int, frame: Any) -> None:
        stream = self.stream or sys.stderr
        self._end_status(stream)
        print("[heartbeat] interrupted — dumping partial trace/metrics",
              file=stream)
        self._stop.set()
        self.dump_partial()
        prev = self._prev_sigint
        if callable(prev):
            prev(signum, frame)
        else:  # pragma: no cover - SIG_DFL/SIG_IGN fallbacks
            raise KeyboardInterrupt
