"""Configuration front end (paper §4): Cisco-IOS-style parsing, route-map
DAG IR with prefix hoisting, and NV emission of the fig 9 RIB model."""

from .configs import Prefix, RouterConfig, infer_topology, parse_config
from .to_nv import Translation, translate

__all__ = ["parse_config", "RouterConfig", "Prefix", "infer_topology",
           "translate", "Translation"]
