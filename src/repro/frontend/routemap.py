"""Route-map translation via a DAG intermediate representation (paper §4.2).

Route-maps operate on a single route, while the NV encoding processes all
routes at once through the ``dict`` attribute.  The translation therefore:

1. builds a decision DAG from the route-map's clauses — internal nodes test
   route or prefix properties, leaves hold mutation actions (fig 10b);
2. *hoists* every prefix condition above all route conditions by Shannon
   expansion (the node-swapping of fig 10c), so prefix tests can become
   ``mapIte`` key predicates;
3. emits NV source: one ``mapIte`` per disjoint prefix region, whose value
   functions are if-chains over the route fields (fig 10d).

Prefix-list matches are resolved against the *announced prefix universe* at
translation time, so every key test is a disjunction of constants — the
paper's §3.1 restriction that map keys be statically known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .configs import Prefix, RouteMapClause, RouterConfig

# ---------------------------------------------------------------------------
# DAG representation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CondCommunity:
    """Test: the route carries every community of the named list."""

    communities: tuple[int, ...]

    def __str__(self) -> str:
        return f"comm{list(self.communities)}"


@dataclass(frozen=True)
class CondPrefix:
    """Test: the route's prefix (the map key) is one of these ids."""

    prefix_ids: tuple[int, ...]

    def __str__(self) -> str:
        return f"pfx{list(self.prefix_ids)}"


Condition = CondCommunity | CondPrefix


@dataclass(frozen=True)
class Actions:
    """A leaf: either drop the route or apply the mutations in order."""

    drop: bool = False
    set_local_pref: int | None = None
    set_metric: int | None = None
    add_communities: tuple[int, ...] = ()
    remove_communities: tuple[int, ...] = ()

    def is_identity(self) -> bool:
        return (not self.drop and self.set_local_pref is None
                and self.set_metric is None and not self.add_communities
                and not self.remove_communities)


DROP = Actions(drop=True)
IDENTITY = Actions()


@dataclass(frozen=True)
class DagNode:
    """An internal decision node: test ``cond``, follow ``on_true`` or
    ``on_false`` (each a DagNode or an Actions leaf)."""

    cond: Condition
    on_true: "DagNode | Actions"
    on_false: "DagNode | Actions"


Dag = DagNode | Actions


def build_dag(clauses: list[RouteMapClause], config: RouterConfig,
              prefix_ids: dict[Prefix, int]) -> Dag:
    """Compile a route-map's clause list into a decision DAG.

    Clauses apply first-match; an unmatched route is implicitly dropped
    (the ⊥ leaf of fig 10b).
    """
    dag: Dag = DROP
    for clause in sorted(clauses, key=lambda c: c.seq, reverse=True):
        leaf = _clause_actions(clause, config)
        conditions = _clause_conditions(clause, config, prefix_ids)
        body: Dag = leaf
        for cond in reversed(conditions):
            body = DagNode(cond, body, dag)
        if not conditions:
            # Unconditional clause: everything reaching it matches.
            body = leaf
        dag = body
    return dag


def _clause_actions(clause: RouteMapClause, config: RouterConfig) -> Actions:
    if clause.action == "deny":
        return DROP
    removed: list[int] = []
    for name in clause.delete_comm_lists:
        removed.extend(config.community_lists.get(name, []))
    return Actions(
        drop=False,
        set_local_pref=clause.set_local_pref,
        set_metric=clause.set_metric,
        add_communities=tuple(clause.set_communities),
        remove_communities=tuple(removed),
    )


def _clause_conditions(clause: RouteMapClause, config: RouterConfig,
                       prefix_ids: dict[Prefix, int]) -> list[Condition]:
    conditions: list[Condition] = []
    for name in clause.match_communities:
        comms = config.community_lists.get(name)
        if comms is None:
            raise KeyError(f"route-map references unknown community-list {name!r}")
        conditions.append(CondCommunity(tuple(comms)))
    for name in clause.match_prefix_lists:
        entries = config.prefix_lists.get(name)
        if entries is None:
            raise KeyError(f"route-map references unknown prefix-list {name!r}")
        ids = tuple(sorted(
            pid for pfx, pid in prefix_ids.items()
            if any(entry.contains(pfx) for entry in entries)))
        conditions.append(CondPrefix(ids))
    return conditions


# ---------------------------------------------------------------------------
# Prefix hoisting (fig 10c)
# ---------------------------------------------------------------------------


def hoist_prefixes(dag: Dag) -> Dag:
    """Shannon-expand on prefix conditions so that every :class:`CondPrefix`
    node dominates every :class:`CondCommunity` node."""
    cond = _find_prefix_cond(dag)
    if cond is None:
        return dag
    on_true = hoist_prefixes(_restrict(dag, cond, True))
    on_false = hoist_prefixes(_restrict(dag, cond, False))
    if on_true == on_false:
        return on_true
    return DagNode(cond, on_true, on_false)


def _find_prefix_cond(dag: Dag) -> CondPrefix | None:
    if isinstance(dag, Actions):
        return None
    if isinstance(dag.cond, CondPrefix):
        return dag.cond
    return _find_prefix_cond(dag.on_true) or _find_prefix_cond(dag.on_false)


def _restrict(dag: Dag, cond: Condition, value: bool) -> Dag:
    if isinstance(dag, Actions):
        return dag
    if dag.cond == cond:
        return _restrict(dag.on_true if value else dag.on_false, cond, value)
    return DagNode(dag.cond,
                   _restrict(dag.on_true, cond, value),
                   _restrict(dag.on_false, cond, value))


def prefix_regions(dag: Dag) -> Iterator[tuple[list[tuple[CondPrefix, bool]], Dag]]:
    """Iterate the disjoint prefix regions of a hoisted DAG: each yields the
    list of (prefix condition, sign) on the path and the community-only
    sub-DAG at that region."""
    if isinstance(dag, Actions) or not isinstance(dag.cond, CondPrefix):
        yield [], dag
        return
    for sub_path, sub in prefix_regions(dag.on_true):
        yield [(dag.cond, True)] + sub_path, sub
    for sub_path, sub in prefix_regions(dag.on_false):
        yield [(dag.cond, False)] + sub_path, sub


def is_hoisted(dag: Dag, under_comm: bool = False) -> bool:
    """Check the fig 10c invariant: no prefix condition below a community
    condition."""
    if isinstance(dag, Actions):
        return True
    if isinstance(dag.cond, CondPrefix) and under_comm:
        return False
    below = under_comm or isinstance(dag.cond, CondCommunity)
    return is_hoisted(dag.on_true, below) and is_hoisted(dag.on_false, below)


# ---------------------------------------------------------------------------
# NV code generation (fig 10d)
# ---------------------------------------------------------------------------


def actions_nv(actions: Actions, num_suffix: str = "u16",
               comm_suffix: str = "") -> str:
    """NV expression of type ``option[bgpR]`` for a leaf's mutations, applied
    to a bound variable ``v`` holding the (non-optional) BGP route record.
    ``num_suffix`` is the literal suffix for local-pref/metric fields,
    ``comm_suffix`` for community values."""
    if actions.drop:
        return "None"
    updates: list[str] = []
    if actions.set_local_pref is not None:
        updates.append(f"lpB = {actions.set_local_pref}{num_suffix}")
    if actions.set_metric is not None:
        updates.append(f"medB = {actions.set_metric}{num_suffix}")
    expr = "v"
    comm_expr = "v.commsB"
    for c in actions.add_communities:
        comm_expr = f"{comm_expr}[{c}{comm_suffix} := true]"
    for c in actions.remove_communities:
        comm_expr = f"{comm_expr}[{c}{comm_suffix} := false]"
    if comm_expr != "v.commsB":
        updates.append(f"commsB = {comm_expr}")
    if updates:
        expr = "{v with " + "; ".join(updates) + "}"
    return f"Some {expr}"


def community_dag_nv(dag: Dag, num_suffix: str = "u16",
                     comm_suffix: str = "") -> str:
    """NV if-chain over route fields for a community-only DAG (bound var v)."""
    if isinstance(dag, Actions):
        return actions_nv(dag, num_suffix, comm_suffix)
    assert isinstance(dag.cond, CondCommunity)
    test = " && ".join(f"v.commsB[{c}{comm_suffix}]" for c in dag.cond.communities)
    return (f"if {test} then {community_dag_nv(dag.on_true, num_suffix, comm_suffix)} "
            f"else {community_dag_nv(dag.on_false, num_suffix, comm_suffix)}")


def route_fn_nv(dag: Dag, num_suffix: str = "u16", comm_suffix: str = "") -> str:
    """NV function ``ribEntry -> ribEntry`` applying a community-only DAG to
    the entry's BGP field, with the None-propagating wrapper of fig 10d."""
    body = community_dag_nv(dag, num_suffix, comm_suffix)
    return ("(fun ent -> match ent.bgp with | None -> ent "
            "| Some v -> {ent with bgp = (" + body + ")})")


def prefix_pred_nv(path: list[tuple[CondPrefix, bool]], key_suffix: str) -> str:
    """NV key predicate for one prefix region (conjunction of memberships)."""
    parts: list[str] = []
    for cond, sign in path:
        if cond.prefix_ids:
            member = " || ".join(f"k = {pid}{key_suffix}" for pid in cond.prefix_ids)
            member = f"({member})"
        else:
            member = "false"
        parts.append(member if sign else f"!{member}")
    if not parts:
        return "(fun k -> true)"
    return "(fun k -> " + " && ".join(parts) + ")"


def route_map_nv(name: str, clauses: list[RouteMapClause], config: RouterConfig,
                 prefix_ids: dict[Prefix, int], key_suffix: str = "u16",
                 num_suffix: str = "u16", comm_suffix: str = "") -> str:
    """The complete NV declaration for one route-map: a function over the RIB
    map (per-prefix entries), chaining one ``mapIte`` per disjoint prefix
    region.

    Regions are mutually exclusive, so applying them sequentially with an
    identity else-branch is sound: each entry is transformed exactly once.
    """
    dag = hoist_prefixes(build_dag(clauses, config, prefix_ids))
    assert is_hoisted(dag)
    lines = [f"let rm_{name} m ="]
    step = "m"
    count = 0
    for path, region in prefix_regions(dag):
        fn = route_fn_nv(region, num_suffix, comm_suffix)
        if not path:
            # Single region covering all keys: a plain map.
            lines.append(f"  map {fn} {step}")
            return "\n".join(lines)
        pred = prefix_pred_nv(path, key_suffix)
        var = f"m{count}"
        lines.append(f"  let {var} = mapIte {pred} {fn} (fun ent -> ent) {step} in")
        step = var
        count += 1
    lines.append(f"  {step}")
    return "\n".join(lines)
