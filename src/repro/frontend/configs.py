"""Parser for a Cisco-IOS-style router configuration dialect (paper fig 1).

This is the front half of the paper's §4 pipeline: vendor-ish configuration
text → a structured surface representation (the role Batfish's IR plays for
the original system).  The dialect covers the control-plane constructs the
paper's translation handles:

* ``interface`` stanzas with ``ip address A.B.C.D/P`` (physical connectivity
  is inferred by matching subnets across routers, as Batfish does);
* ``ip route <net> <mask> <next-hop>`` static routes;
* ``router bgp <asn>`` with ``network``, ``neighbor <ip> remote-as`` /
  ``route-map <name> in|out`` and ``redistribute static|connected|ospf``;
* ``router ospf <pid>`` with ``network <net> <wildcard> area <n>``,
  ``redistribute ...`` and per-interface ``ip ospf cost``;
* ``ip community-list standard <name> permit <asn:tag>...``;
* ``ip prefix-list <name> permit <net>/<len>``;
* ``route-map <name> permit|deny <seq>`` with ``match community``,
  ``match ip address prefix-list``, ``set local-preference``, ``set metric``,
  ``set community`` (additive) and ``set comm-list delete``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.errors import NvError


class ConfigError(NvError):
    """Raised on malformed configuration text."""


# ---------------------------------------------------------------------------
# Addressing helpers
# ---------------------------------------------------------------------------


def parse_ip(text: str) -> int:
    parts = text.split(".")
    if len(parts) != 4:
        raise ConfigError(f"malformed IPv4 address {text!r}")
    value = 0
    for p in parts:
        octet = int(p)
        if not 0 <= octet <= 255:
            raise ConfigError(f"malformed IPv4 address {text!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def mask_to_len(mask: int) -> int:
    """Convert a contiguous netmask to a prefix length."""
    length = bin(mask).count("1")
    expected = ((1 << length) - 1) << (32 - length) if length else 0
    if mask != expected & 0xFFFFFFFF:
        raise ConfigError(f"non-contiguous netmask {format_ip(mask)}")
    return length


def wildcard_to_len(wildcard: int) -> int:
    """OSPF-style inverse masks (0.0.0.255 = /24)."""
    return mask_to_len((~wildcard) & 0xFFFFFFFF)


@dataclass(frozen=True, slots=True)
class Prefix:
    """An IPv4 prefix (network address is canonicalised to the mask)."""

    addr: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise ConfigError(f"bad prefix length {self.length}")
        mask = ((1 << self.length) - 1) << (32 - self.length) if self.length else 0
        object.__setattr__(self, "addr", self.addr & mask)

    def contains(self, other: "Prefix") -> bool:
        if other.length < self.length:
            return False
        mask = ((1 << self.length) - 1) << (32 - self.length) if self.length else 0
        return (other.addr & mask) == self.addr

    def __str__(self) -> str:
        return f"{format_ip(self.addr)}/{self.length}"

    @staticmethod
    def parse(text: str) -> "Prefix":
        if "/" not in text:
            raise ConfigError(f"expected A.B.C.D/len, got {text!r}")
        addr, length = text.split("/", 1)
        return Prefix(parse_ip(addr), int(length))


def parse_community(text: str) -> int:
    """Communities are ``asn:tag`` pairs packed into one integer."""
    if ":" in text:
        asn, tag = text.split(":", 1)
        return (int(asn) << 16) | int(tag)
    return int(text)


# ---------------------------------------------------------------------------
# Configuration structure
# ---------------------------------------------------------------------------


@dataclass
class Interface:
    name: str
    prefix: Prefix | None = None
    ospf_cost: int | None = None


@dataclass
class StaticRoute:
    prefix: Prefix
    next_hop: int  # IP of the next hop


@dataclass
class BgpNeighbor:
    ip: int
    remote_as: int | None = None
    route_map_in: str | None = None
    route_map_out: str | None = None


@dataclass
class BgpConfig:
    asn: int
    networks: list[Prefix] = field(default_factory=list)
    neighbors: dict[int, BgpNeighbor] = field(default_factory=dict)
    redistribute: list[str] = field(default_factory=list)

    def neighbor(self, ip: int) -> BgpNeighbor:
        if ip not in self.neighbors:
            self.neighbors[ip] = BgpNeighbor(ip)
        return self.neighbors[ip]


@dataclass
class OspfNetwork:
    prefix: Prefix
    area: int


@dataclass
class OspfConfig:
    process_id: int
    networks: list[OspfNetwork] = field(default_factory=list)
    redistribute: list[str] = field(default_factory=list)
    redistribute_metric: int = 20


@dataclass
class RouteMapClause:
    action: str            # "permit" | "deny"
    seq: int
    match_communities: list[str] = field(default_factory=list)   # list names
    match_prefix_lists: list[str] = field(default_factory=list)
    set_local_pref: int | None = None
    set_metric: int | None = None
    set_communities: list[int] = field(default_factory=list)
    delete_comm_lists: list[str] = field(default_factory=list)


@dataclass
class RouterConfig:
    hostname: str
    interfaces: dict[str, Interface] = field(default_factory=dict)
    static_routes: list[StaticRoute] = field(default_factory=list)
    bgp: BgpConfig | None = None
    ospf: OspfConfig | None = None
    community_lists: dict[str, list[int]] = field(default_factory=dict)
    prefix_lists: dict[str, list[Prefix]] = field(default_factory=dict)
    route_maps: dict[str, list[RouteMapClause]] = field(default_factory=dict)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class ConfigParser:
    """Line-oriented parser; stanza context is tracked like IOS does."""

    def __init__(self, hostname: str) -> None:
        self.config = RouterConfig(hostname)
        self._iface: Interface | None = None
        self._bgp: BgpConfig | None = None
        self._ospf: OspfConfig | None = None
        self._clause: RouteMapClause | None = None

    def parse(self, text: str) -> RouterConfig:
        for raw in text.splitlines():
            line = raw.split("!")[0].rstrip()
            if not line.strip():
                continue
            self._line(line.strip(), indented=raw.startswith((" ", "\t")))
        return self.config

    def _reset_context(self) -> None:
        self._iface = None
        self._bgp = None
        self._ospf = None
        self._clause = None

    def _line(self, line: str, indented: bool) -> None:
        words = line.split()
        head = words[0]

        if head == "hostname":
            self.config.hostname = words[1]
            return
        if head == "interface":
            self._reset_context()
            iface = Interface(words[1])
            self.config.interfaces[words[1]] = iface
            self._iface = iface
            return
        if head == "router" and words[1] == "bgp":
            self._reset_context()
            self._bgp = BgpConfig(int(words[2]))
            self.config.bgp = self._bgp
            return
        if head == "router" and words[1] == "ospf":
            self._reset_context()
            self._ospf = OspfConfig(int(words[2]))
            self.config.ospf = self._ospf
            return
        if head == "route-map":
            self._reset_context()
            name, action, seq = words[1], words[2], int(words[3])
            if action not in ("permit", "deny"):
                raise ConfigError(f"bad route-map action {action!r}")
            clause = RouteMapClause(action, seq)
            self.config.route_maps.setdefault(name, []).append(clause)
            self._clause = clause
            return
        if head == "ip":
            self._ip_line(words)
            return
        if head == "bgp" and self._bgp is not None:
            return  # bgp router-id etc.: accepted, ignored
        if head == "match" and self._clause is not None:
            self._match_line(words)
            return
        if head == "set" and self._clause is not None:
            self._set_line(words)
            return
        if head == "neighbor" and self._bgp is not None:
            self._neighbor_line(words)
            return
        if head == "network":
            self._network_line(words)
            return
        if head == "redistribute":
            target = self._bgp.redistribute if self._bgp is not None else (
                self._ospf.redistribute if self._ospf is not None else None)
            if target is None:
                raise ConfigError("redistribute outside a router stanza")
            target.append(words[1])
            if self._ospf is not None and "metric" in words:
                self._ospf.redistribute_metric = int(words[words.index("metric") + 1])
            return
        if head in ("distance", "maximum-paths", "timers", "no", "exit",
                    "passive-interface", "shutdown", "description"):
            return  # accepted but not modelled
        raise ConfigError(f"unrecognised configuration line: {line!r}")

    def _ip_line(self, words: list[str]) -> None:
        sub = words[1]
        if sub == "address" and self._iface is not None:
            if "/" in words[2]:
                self._iface.prefix = Prefix.parse(words[2])
            else:
                self._iface.prefix = Prefix(parse_ip(words[2]),
                                            mask_to_len(parse_ip(words[3])))
            return
        if sub == "ospf" and words[2] == "cost" and self._iface is not None:
            self._iface.ospf_cost = int(words[3])
            return
        if sub == "route":
            prefix = Prefix(parse_ip(words[2]), mask_to_len(parse_ip(words[3])))
            self.config.static_routes.append(StaticRoute(prefix, parse_ip(words[4])))
            return
        if sub == "community-list":
            # ip community-list standard NAME permit C1 C2 ...
            offset = 3 if words[2] == "standard" else 2
            name = words[offset]
            if words[offset + 1] != "permit":
                raise ConfigError("only permit community-lists are modelled")
            comms = [parse_community(w) for w in words[offset + 2:]]
            self.config.community_lists.setdefault(name, []).extend(comms)
            return
        if sub == "prefix-list":
            # ip prefix-list NAME permit A.B.C.D/len
            name = words[2]
            if words[3] != "permit":
                raise ConfigError("only permit prefix-lists are modelled")
            self.config.prefix_lists.setdefault(name, []).append(
                Prefix.parse(words[4]))
            return
        raise ConfigError(f"unrecognised ip line: {' '.join(words)!r}")

    def _neighbor_line(self, words: list[str]) -> None:
        assert self._bgp is not None
        ip = parse_ip(words[1])
        neighbor = self._bgp.neighbor(ip)
        if words[2] == "remote-as":
            neighbor.remote_as = int(words[3])
        elif words[2] == "route-map":
            if words[4] == "in":
                neighbor.route_map_in = words[3]
            elif words[4] == "out":
                neighbor.route_map_out = words[3]
            else:
                raise ConfigError(f"bad route-map direction {words[4]!r}")
        else:
            raise ConfigError(f"unrecognised neighbor option {words[2]!r}")

    def _network_line(self, words: list[str]) -> None:
        if self._ospf is not None:
            # network A.B.C.D W.W.W.W area N
            prefix = Prefix(parse_ip(words[1]), wildcard_to_len(parse_ip(words[2])))
            if words[3] != "area":
                raise ConfigError("ospf network requires an area")
            self._ospf.networks.append(OspfNetwork(prefix, int(words[4])))
            return
        if self._bgp is not None:
            if "/" in words[1]:
                self._bgp.networks.append(Prefix.parse(words[1]))
            else:
                self._bgp.networks.append(Prefix(parse_ip(words[1]),
                                                 mask_to_len(parse_ip(words[2]))))
            return
        raise ConfigError("network line outside a router stanza")

    def _match_line(self, words: list[str]) -> None:
        assert self._clause is not None
        if words[1] == "community":
            self._clause.match_communities.extend(words[2:])
        elif words[1] == "ip" and words[2] == "address" and words[3] == "prefix-list":
            self._clause.match_prefix_lists.extend(words[4:])
        else:
            raise ConfigError(f"unrecognised match: {' '.join(words)!r}")

    def _set_line(self, words: list[str]) -> None:
        assert self._clause is not None
        if words[1] == "local-preference":
            self._clause.set_local_pref = int(words[2])
        elif words[1] == "metric":
            self._clause.set_metric = int(words[2])
        elif words[1] == "community":
            extra = [w for w in words[2:] if w != "additive"]
            self._clause.set_communities.extend(parse_community(w) for w in extra)
        elif words[1] == "comm-list" and words[3] == "delete":
            self._clause.delete_comm_lists.append(words[2])
        else:
            raise ConfigError(f"unrecognised set: {' '.join(words)!r}")


def parse_config(hostname: str, text: str) -> RouterConfig:
    return ConfigParser(hostname).parse(text)


# ---------------------------------------------------------------------------
# Topology inference
# ---------------------------------------------------------------------------


def infer_topology(configs: list[RouterConfig]
                   ) -> tuple[dict[str, int], list[tuple[int, int]]]:
    """Infer physical connectivity by matching interface subnets, the way
    Batfish does: two routers with interfaces in the same subnet are adjacent.

    Returns (hostname -> node index, undirected links).
    """
    node_of = {cfg.hostname: i for i, cfg in enumerate(configs)}
    by_subnet: dict[Prefix, list[int]] = {}
    for cfg in configs:
        for iface in cfg.interfaces.values():
            if iface.prefix is not None:
                subnet = Prefix(iface.prefix.addr, iface.prefix.length)
                by_subnet.setdefault(subnet, []).append(node_of[cfg.hostname])
    links: set[tuple[int, int]] = set()
    for members in by_subnet.values():
        distinct = sorted(set(members))
        for i, u in enumerate(distinct):
            for v in distinct[i + 1:]:
                links.add((u, v))
    return node_of, sorted(links)
