"""The NV interpreter.

Evaluates typed NV expressions to the runtime values of
:mod:`repro.eval.values`.  The interpreter is the paper's baseline execution
engine; the compiled path (:mod:`repro.eval.compile_py`) produces host-language
closures for the same semantics.

Map operations require type annotations on the AST (run
:func:`repro.lang.typecheck.check_program` first) so that key layouts are
known; ``mapIte`` key predicates are translated to BDDs by symbolically
interpreting the predicate closure over the key bits.
"""

from __future__ import annotations

from typing import Any, Callable

from ..lang import ast as A
from ..lang import types as T
from ..lang.errors import NvEncodingError, NvRuntimeError
from .maps import MapContext, NVMap
from .values import VClosure, VRecord, VSome


class Interpreter:
    def __init__(self, ctx: MapContext | None = None,
                 enable_cache: bool = True) -> None:
        self.ctx = ctx if ctx is not None else MapContext()
        # The paper amortises diagram-operation cost by caching across calls;
        # `enable_cache=False` turns that off (ablation benchmark).
        self.enable_cache = enable_cache
        # Cross-call memo tables for map/combine, keyed by the identity of the
        # NV closure's AST node — the paper caches diagram operations because
        # simulation applies the same transfer/merge repeatedly.
        self._map_memo: dict[Any, dict[int, int]] = {}
        self._combine_memo: dict[Any, dict[tuple[int, int], int]] = {}
        # mapIte's main memo is keyed by the (fn_true, fn_false) pair; the
        # pred node id is part of each packed memo key, so one table serves
        # every predicate.  Branch memos use apply1 keying and live in
        # _map_memo, shared with plain ``map`` calls of the same closure.
        self._mapite_memo: dict[Any, dict[int, int]] = {}
        self._pred_cache: dict[Any, int] = {}
        self._free_vars_cache: dict[int, tuple[str, ...]] = {}

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def eval(self, e: A.Expr, env: dict[str, Any] | None = None) -> Any:
        return self._eval(e, env or {})

    def apply(self, fn: Any, arg: Any) -> Any:
        """Apply a function value (closure or host callable)."""
        if isinstance(fn, VClosure):
            new_env = dict(fn.env)
            new_env[fn.param] = arg
            return self._eval(fn.body, new_env)
        if callable(fn):
            return fn(arg)
        raise NvRuntimeError(f"cannot apply non-function value {fn!r}")

    def as_callable(self, fn: Any) -> Callable[[Any], Any]:
        if isinstance(fn, VClosure):
            return lambda arg: self.apply(fn, arg)
        if callable(fn):
            return fn
        raise NvRuntimeError(f"cannot apply non-function value {fn!r}")

    # ------------------------------------------------------------------
    # Core evaluator
    # ------------------------------------------------------------------

    def _eval(self, e: A.Expr, env: dict[str, Any]) -> Any:
        if isinstance(e, A.EVar):
            try:
                return env[e.name]
            except KeyError:
                raise NvRuntimeError(f"unbound variable {e.name!r} at {e.span}") from None
        if isinstance(e, A.EBool):
            return e.value
        if isinstance(e, A.EInt):
            return e.value & ((1 << e.width) - 1)
        if isinstance(e, A.ENode):
            return e.value
        if isinstance(e, A.EEdge):
            return (e.src, e.dst)
        if isinstance(e, A.ENone):
            return None
        if isinstance(e, A.ESome):
            return VSome(self._eval(e.sub, env))
        if isinstance(e, A.ETuple):
            return tuple(self._eval(x, env) for x in e.elts)
        if isinstance(e, A.ETupleGet):
            return self._eval(e.sub, env)[e.index]
        if isinstance(e, A.ERecord):
            return VRecord(tuple((n, self._eval(x, env)) for n, x in e.fields))
        if isinstance(e, A.ERecordWith):
            base = self._eval(e.base, env)
            if not isinstance(base, VRecord):
                raise NvRuntimeError(f"record update on non-record {base!r}")
            return base.with_updates({n: self._eval(x, env) for n, x in e.updates})
        if isinstance(e, A.EProj):
            base = self._eval(e.sub, env)
            if not isinstance(base, VRecord):
                raise NvRuntimeError(f"field access .{e.label} on non-record {base!r}")
            return base.get(e.label)
        if isinstance(e, A.EIf):
            if self._eval(e.cond, env):
                return self._eval(e.then, env)
            return self._eval(e.els, env)
        if isinstance(e, A.ELet):
            new_env = dict(env)
            new_env[e.name] = self._eval(e.bound, env)
            return self._eval(e.body, new_env)
        if isinstance(e, A.ELetPat):
            bound = self._eval(e.bound, env)
            bindings = match_pattern(e.pat, bound)
            if bindings is None:
                raise NvRuntimeError(f"irrefutable let pattern failed on {bound!r}")
            new_env = dict(env)
            new_env.update(bindings)
            return self._eval(e.body, new_env)
        if isinstance(e, A.EFun):
            return VClosure(e.param, e.body, env, e.param_ty)
        if isinstance(e, A.EApp):
            fn = self._eval(e.fn, env)
            arg = self._eval(e.arg, env)
            return self.apply(fn, arg)
        if isinstance(e, A.EMatch):
            scrutinee = self._eval(e.scrutinee, env)
            for pat, body in e.branches:
                bindings = match_pattern(pat, scrutinee)
                if bindings is not None:
                    if bindings:
                        new_env = dict(env)
                        new_env.update(bindings)
                        return self._eval(body, new_env)
                    return self._eval(body, env)
            raise NvRuntimeError(f"match failure on {scrutinee!r} at {e.span}")
        if isinstance(e, A.EOp):
            return self._eval_op(e, env)
        raise NvRuntimeError(f"cannot evaluate {type(e).__name__}")

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def _eval_op(self, e: A.EOp, env: dict[str, Any]) -> Any:
        op = e.op
        if op == "and":
            return self._eval(e.args[0], env) and self._eval(e.args[1], env)
        if op == "or":
            return self._eval(e.args[0], env) or self._eval(e.args[1], env)
        if op == "not":
            return not self._eval(e.args[0], env)
        if op == "add" or op == "sub":
            a = self._eval(e.args[0], env)
            b = self._eval(e.args[1], env)
            width = e.ty.width if isinstance(e.ty, T.TInt) else 32
            if op == "add":
                return (a + b) & ((1 << width) - 1)
            return (a - b) & ((1 << width) - 1)
        if op == "eq":
            return self._eval(e.args[0], env) == self._eval(e.args[1], env)
        if op == "lt":
            return self._eval(e.args[0], env) < self._eval(e.args[1], env)
        if op == "le":
            return self._eval(e.args[0], env) <= self._eval(e.args[1], env)
        if op == "mcreate":
            default = self._eval(e.args[0], env)
            key_ty = self._map_key_type(e)
            return NVMap.create(self.ctx, key_ty, default)
        if op == "mget":
            m = self._eval_map(e.args[0], env)
            key = self._eval(e.args[1], env)
            return m.get(key)
        if op == "mset":
            m = self._eval_map(e.args[0], env)
            key = self._eval(e.args[1], env)
            value = self._eval(e.args[2], env)
            return m.set(key, value)
        if op == "mmap":
            fn = self._eval(e.args[0], env)
            m = self._eval_map(e.args[1], env)
            return m.map(self.as_callable(fn), self._memo_for(fn, self._map_memo))
        if op == "mcombine":
            fn = self._eval(e.args[0], env)
            m1 = self._eval_map(e.args[1], env)
            m2 = self._eval_map(e.args[2], env)
            call = self.as_callable(fn)
            # Cache the partial application ``fn x`` per distinct left leaf:
            # combine pairs each left leaf with many right leaves, and leaf
            # values are owned by the manager's leaf table, so their ids are
            # stable keys for the duration of the call.
            partial: dict[int, Any] = {}

            def fn2(x: Any, y: Any) -> Any:
                fx = partial.get(id(x))
                if fx is None:
                    fx = call(x)
                    partial[id(x)] = fx
                return self.apply(fx, y)

            return m1.combine(fn2, m2, self._memo_for(fn, self._combine_memo))
        if op == "mmapite":
            pred = self._eval(e.args[0], env)
            fn_true = self._eval(e.args[1], env)
            fn_false = self._eval(e.args[2], env)
            m = self._eval_map(e.args[3], env)
            pred_bdd = self.predicate_bdd(pred, m.key_ty)
            kt = self._closure_key(fn_true) if self.enable_cache else None
            kf = self._closure_key(fn_false) if self.enable_cache else None
            if kt is None or kf is None:
                memo = {}
            else:
                memo = self._mapite_memo.setdefault((kt, kf), {})
            return m.map_ite(pred_bdd, self.as_callable(fn_true),
                             self.as_callable(fn_false), memo,
                             self._memo_for(fn_true, self._map_memo),
                             self._memo_for(fn_false, self._map_memo))
        raise NvRuntimeError(f"unknown operator {op!r}")

    def _eval_map(self, e: A.Expr, env: dict[str, Any]) -> NVMap:
        m = self._eval(e, env)
        if not isinstance(m, NVMap):
            raise NvRuntimeError(f"expected a map, got {m!r}")
        return m

    def _map_key_type(self, e: A.EOp) -> T.Type:
        if not isinstance(e.ty, T.TDict):
            raise NvEncodingError(
                "createDict requires a type-annotated AST (run the type checker "
                "before evaluation) so the key layout is known")
        return e.ty.key

    def _memo_for(self, fn: Any, table: dict[Any, dict]) -> dict:
        """A stable memo table per *semantic function*, enabling the
        cross-call caching of diagram operations the paper relies on.

        Two closures compute the same function when they share a body and
        their captured free-variable values coincide, so the cache key is
        (body identity, captured values).  Unhashable captures fall back to a
        fresh per-call memo.
        """
        if not self.enable_cache:
            return {}
        key = self._closure_key(fn)
        if key is None:
            return {}
        memo = table.get(key)
        if memo is None:
            memo = {}
            table[key] = memo
        return memo

    def _closure_key(self, fn: Any) -> Any:
        if not isinstance(fn, VClosure):
            key_fn = getattr(fn, "nv_cache_key", None)
            if key_fn is not None:
                return key_fn() if callable(key_fn) else key_fn
            return id(fn)
        body_id = id(fn.body)
        names = self._free_vars_cache.get(body_id)
        if names is None:
            names = tuple(sorted(A.free_vars(fn.body) - {fn.param}))
            self._free_vars_cache[body_id] = names
        try:
            captured = tuple(map(fn.env.__getitem__, names))
            hash(captured)
        except (KeyError, TypeError):
            return None
        return (body_id, captured)

    # ------------------------------------------------------------------
    # Key predicates
    # ------------------------------------------------------------------

    def predicate_bdd(self, pred: Any, key_ty: T.Type) -> int:
        """Build the BDD of a key predicate closure (fig 11b).

        The closure body is interpreted symbolically over the key's bit
        variables.  Results are cached per (closure body, captured values)
        because simulation evaluates the same predicates repeatedly.
        """
        from .symbolic import SymbolicEvaluator  # local import to avoid a cycle

        cache_key = self._pred_cache_key(pred, key_ty) if self.enable_cache else None
        if cache_key is not None:
            cached = self._pred_cache.get(cache_key)
            if cached is not None:
                return cached
        sym = SymbolicEvaluator(self, self.ctx)
        result = sym.predicate_to_bdd(pred, key_ty)
        if cache_key is not None:
            self._pred_cache[cache_key] = result
        return result

    def _pred_cache_key(self, pred: Any, key_ty: T.Type) -> Any:
        closure_key = self._closure_key(pred)
        if closure_key is None:
            return None
        return (closure_key, key_ty)


def match_pattern(pat: A.Pattern, value: Any) -> dict[str, Any] | None:
    """Match ``value`` against ``pat``; return bindings or None on failure."""
    if isinstance(pat, A.PWild):
        return {}
    if isinstance(pat, A.PVar):
        return {pat.name: value}
    if isinstance(pat, A.PBool):
        return {} if value is pat.value or value == pat.value else None
    if isinstance(pat, A.PInt):
        return {} if value == pat.value else None
    if isinstance(pat, A.PNode):
        return {} if value == pat.value else None
    if isinstance(pat, A.PNone):
        return {} if value is None else None
    if isinstance(pat, A.PSome):
        if isinstance(value, VSome):
            return match_pattern(pat.sub, value.value)
        return None
    if isinstance(pat, (A.PTuple, A.PEdge)):
        subs = pat.elts if isinstance(pat, A.PTuple) else (pat.src, pat.dst)
        if not isinstance(value, tuple) or len(value) != len(subs):
            return None
        bindings: dict[str, Any] = {}
        for p, v in zip(subs, value):
            sub_bindings = match_pattern(p, v)
            if sub_bindings is None:
                return None
            bindings.update(sub_bindings)
        return bindings
    if isinstance(pat, A.PRecord):
        if not isinstance(value, VRecord):
            return None
        bindings = {}
        for name, p in pat.fields:
            sub_bindings = match_pattern(p, value.get(name))
            if sub_bindings is None:
                return None
            bindings.update(sub_bindings)
        return bindings
    raise NvRuntimeError(f"unsupported pattern {pat}")


def program_env(program: A.Program, interp: Interpreter,
                symbolics: dict[str, Any] | None = None) -> dict[str, Any]:
    """Evaluate a program's declarations in order, producing a value
    environment.  ``symbolics`` supplies concrete values for symbolic
    variables (the normalisation-based analyses require them, §3)."""
    env: dict[str, Any] = {}
    symbolics = symbolics or {}
    for decl in program.decls:
        if isinstance(decl, A.DSymbolic):
            if decl.name not in symbolics:
                raise NvRuntimeError(
                    f"symbolic {decl.name!r} needs a concrete value for evaluation")
            env[decl.name] = symbolics[decl.name]
        elif isinstance(decl, A.DLet):
            env[decl.name] = interp.eval(decl.expr, env)
        elif isinstance(decl, A.DRequire):
            if not interp.eval(decl.expr, env):
                raise NvRuntimeError("require clause violated by symbolic assignment")
    return env
