"""Bit-level encodings of finitary NV types.

MTBDD-backed maps need their key type laid out as a sequence of binary
decisions (paper §5.1, fig 11).  This module computes those layouts relative
to a network context: node and edge widths depend on the topology size, and
declaring narrow integer types (``int8``) directly shrinks the layout — the
space/time saving the paper attributes to sized integers.

Conventions: all components are most-significant-bit first; an option is one
tag bit followed by the payload bits (all zero in the canonical ``None``
encoding); an edge is the source node's bits followed by the destination's.
"""

from __future__ import annotations

from typing import Any

from ..bdd import bitvec
from ..bdd.manager import BddManager
from ..lang import types as T
from ..lang.errors import NvEncodingError
from .values import VRecord, VSome


class Encoder:
    """Encodes values of finitary types as bit patterns for a fixed network."""

    def __init__(self, num_nodes: int, edges: tuple[tuple[int, int], ...]) -> None:
        self.num_nodes = num_nodes
        self.edges = tuple(edges)
        self.node_width = max(1, (max(num_nodes - 1, 0)).bit_length()) if num_nodes > 1 else 1

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------

    def width(self, ty: T.Type) -> int:
        if isinstance(ty, T.TBool):
            return 1
        if isinstance(ty, T.TInt):
            return ty.width
        if isinstance(ty, T.TNode):
            return self.node_width
        if isinstance(ty, T.TEdge):
            return 2 * self.node_width
        if isinstance(ty, T.TOption):
            return 1 + self.width(ty.elt)
        if isinstance(ty, T.TTuple):
            return sum(self.width(t) for t in ty.elts)
        if isinstance(ty, T.TRecord):
            return sum(self.width(t) for _, t in ty.fields)
        raise NvEncodingError(f"type {ty} cannot be used as a map key")

    # ------------------------------------------------------------------
    # Concrete encode/decode
    # ------------------------------------------------------------------

    def encode(self, ty: T.Type, value: Any) -> list[bool]:
        """Encode ``value`` of type ``ty`` as a list of bits, MSB first."""
        if isinstance(ty, T.TBool):
            return [bool(value)]
        if isinstance(ty, T.TInt):
            return _int_bits(value, ty.width)
        if isinstance(ty, T.TNode):
            if not (0 <= value < max(self.num_nodes, 1)):
                raise NvEncodingError(f"node {value} out of range [0, {self.num_nodes})")
            return _int_bits(value, self.node_width)
        if isinstance(ty, T.TEdge):
            u, v = value
            return _int_bits(u, self.node_width) + _int_bits(v, self.node_width)
        if isinstance(ty, T.TOption):
            if value is None:
                return [False] + [False] * self.width(ty.elt)
            if isinstance(value, VSome):
                return [True] + self.encode(ty.elt, value.value)
            raise NvEncodingError(f"{value!r} is not an option value")
        if isinstance(ty, T.TTuple):
            bits: list[bool] = []
            for t, v in zip(ty.elts, value):
                bits.extend(self.encode(t, v))
            return bits
        if isinstance(ty, T.TRecord):
            if not isinstance(value, VRecord):
                raise NvEncodingError(f"{value!r} is not a record value")
            bits = []
            for (_, t), v in zip(ty.fields, value.values()):
                bits.extend(self.encode(t, v))
            return bits
        raise NvEncodingError(f"cannot encode values of type {ty}")

    def decode(self, ty: T.Type, bits: list[bool]) -> Any:
        value, rest = self._decode(ty, bits)
        if rest:
            raise NvEncodingError(f"{len(rest)} extra bits when decoding {ty}")
        return value

    def _decode(self, ty: T.Type, bits: list[bool]) -> tuple[Any, list[bool]]:
        if isinstance(ty, T.TBool):
            return bits[0], bits[1:]
        if isinstance(ty, T.TInt):
            return _bits_int(bits[:ty.width]), bits[ty.width:]
        if isinstance(ty, T.TNode):
            return _bits_int(bits[:self.node_width]), bits[self.node_width:]
        if isinstance(ty, T.TEdge):
            w = self.node_width
            return (_bits_int(bits[:w]), _bits_int(bits[w:2 * w])), bits[2 * w:]
        if isinstance(ty, T.TOption):
            tag, rest = bits[0], bits[1:]
            payload_width = self.width(ty.elt)
            payload, rest2 = rest[:payload_width], rest[payload_width:]
            if not tag:
                return None, rest2
            inner, leftover = self._decode(ty.elt, payload)
            if leftover:
                raise NvEncodingError("option payload width mismatch")
            return VSome(inner), rest2
        if isinstance(ty, T.TTuple):
            out = []
            for t in ty.elts:
                v, bits = self._decode(t, bits)
                out.append(v)
            return tuple(out), bits
        if isinstance(ty, T.TRecord):
            fields = []
            for name, t in ty.fields:
                v, bits = self._decode(t, bits)
                fields.append((name, v))
            return VRecord(tuple(fields)), bits
        raise NvEncodingError(f"cannot decode values of type {ty}")

    # ------------------------------------------------------------------
    # Domain constraints
    # ------------------------------------------------------------------

    def domain(self, ty: T.Type, mgr: BddManager, level0: int = 0) -> int:
        """BDD over the key bits constraining them to *canonical, valid*
        encodings: node/edge indices in range, ``None`` payloads zeroed.

        Used when counting keys per leaf (the paper's failure-scenario class
        sizes) so that garbage bit patterns are not counted.
        """
        if isinstance(ty, T.TBool) or isinstance(ty, T.TInt):
            return mgr.true
        if isinstance(ty, T.TNode):
            bits = bitvec.var_bits(mgr, level0, self.node_width)
            return bitvec.lt_const(mgr, bits, max(self.num_nodes, 1))
        if isinstance(ty, T.TEdge):
            # Valid edge codes are exactly the network's directed edges.
            out = mgr.false
            for u, v in self.edges:
                cube = mgr.true
                pattern = _int_bits(u, self.node_width) + _int_bits(v, self.node_width)
                for i, bit in enumerate(pattern):
                    var = mgr.var(level0 + i)
                    cube = mgr.band(cube, var if bit else mgr.bnot(var))
                out = mgr.bor(out, cube)
            return out
        if isinstance(ty, T.TOption):
            tag = mgr.var(level0)
            payload_ok = self.domain(ty.elt, mgr, level0 + 1)
            zeros = mgr.true
            for i in range(self.width(ty.elt)):
                zeros = mgr.band(zeros, mgr.bnot(mgr.var(level0 + 1 + i)))
            return mgr.bite(tag, payload_ok, zeros)
        if isinstance(ty, T.TTuple):
            out = mgr.true
            offset = level0
            for t in ty.elts:
                out = mgr.band(out, self.domain(t, mgr, offset))
                offset += self.width(t)
            return out
        if isinstance(ty, T.TRecord):
            out = mgr.true
            offset = level0
            for _, t in ty.fields:
                out = mgr.band(out, self.domain(t, mgr, offset))
                offset += self.width(t)
            return out
        raise NvEncodingError(f"cannot build a key domain for type {ty}")

    def enumerate_values(self, ty: T.Type) -> list[Any]:
        """All values of a small finitary type (used by exhaustive checks
        and by the naive fault-tolerance baseline)."""
        if isinstance(ty, T.TBool):
            return [False, True]
        if isinstance(ty, T.TInt):
            if ty.width > 20:
                raise NvEncodingError(f"refusing to enumerate int{ty.width}")
            return list(range(1 << ty.width))
        if isinstance(ty, T.TNode):
            return list(range(self.num_nodes))
        if isinstance(ty, T.TEdge):
            return list(self.edges)
        if isinstance(ty, T.TOption):
            return [None] + [VSome(v) for v in self.enumerate_values(ty.elt)]
        if isinstance(ty, T.TTuple):
            out: list[Any] = [()]
            for t in ty.elts:
                vals = self.enumerate_values(t)
                out = [prev + (v,) for prev in out for v in vals]
            return out
        if isinstance(ty, T.TRecord):
            combos: list[tuple[tuple[str, Any], ...]] = [()]
            for name, t in ty.fields:
                vals = self.enumerate_values(t)
                combos = [prev + ((name, v),) for prev in combos for v in vals]
            return [VRecord(c) for c in combos]
        raise NvEncodingError(f"cannot enumerate values of type {ty}")


def _int_bits(value: int, width: int) -> list[bool]:
    value &= (1 << width) - 1
    return [bool((value >> (width - 1 - i)) & 1) for i in range(width)]


def _bits_int(bits: list[bool]) -> int:
    out = 0
    for b in bits:
        out = (out << 1) | (1 if b else 0)
    return out
