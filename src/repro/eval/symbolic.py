"""Symbolic interpretation of NV expressions over BDD key bits.

``mapIte``'s key predicate must become a BDD over the map's key variables
(paper fig 11b).  This module interprets the predicate closure with its key
argument bound to a *symbolic value* — a tree mirroring the key type whose
scalar positions are BDDs — and returns the boolean BDD of the result.

The evaluator handles mixed concrete/symbolic computation: any subexpression
not touching the key evaluates concretely, exactly as in the interpreter, and
concrete values are lifted to symbolic form only when they meet a symbolic
value (in comparisons, arithmetic or branch merges).
"""

from __future__ import annotations

from typing import Any

from ..bdd import bitvec
from ..bdd.manager import BddManager
from ..lang import ast as A
from ..lang import types as T
from ..lang.errors import NvEncodingError, NvRuntimeError
from .maps import MapContext, NVMap
from .values import VClosure, VRecord, VSome

# ---------------------------------------------------------------------------
# Symbolic values
# ---------------------------------------------------------------------------


class Sym:
    """Base class for symbolic values."""

    __slots__ = ()


class SBool(Sym):
    __slots__ = ("bdd",)

    def __init__(self, bdd: int) -> None:
        self.bdd = bdd


class SInt(Sym):
    """A fixed-width unsigned integer as a vector of BDD bits (MSB first)."""

    __slots__ = ("bits", "width")

    def __init__(self, bits: list[int], width: int | None = None) -> None:
        self.bits = bits
        self.width = width if width is not None else len(bits)


class SNode(SInt):
    __slots__ = ()


class SEdge(Sym):
    """An edge as two symbolic node-index vectors."""

    __slots__ = ("src", "dst")

    def __init__(self, src: SNode, dst: SNode) -> None:
        self.src = src
        self.dst = dst


class SOption(Sym):
    __slots__ = ("tag", "payload")

    def __init__(self, tag: int, payload: Any) -> None:
        self.tag = tag          # BDD: true = Some
        self.payload = payload  # symbolic or concrete value


class STuple(Sym):
    __slots__ = ("elts",)

    def __init__(self, elts: tuple[Any, ...]) -> None:
        self.elts = elts


class SRecord(Sym):
    __slots__ = ("fields",)

    def __init__(self, fields: tuple[tuple[str, Any], ...]) -> None:
        self.fields = fields

    def get(self, name: str) -> Any:
        for label, value in self.fields:
            if label == name:
                return value
        raise KeyError(name)


# ---------------------------------------------------------------------------
# Evaluator
# ---------------------------------------------------------------------------


class SymbolicEvaluator:
    def __init__(self, interp: Any, ctx: MapContext) -> None:
        self.interp = interp
        self.ctx = ctx
        self.mgr: BddManager = ctx.manager

    # -- construction of symbolic keys ---------------------------------

    def sym_var(self, ty: T.Type, level: int) -> tuple[Any, int]:
        """A symbolic value of ``ty`` over fresh variables starting at
        ``level``; returns (value, next free level)."""
        mgr = self.mgr
        enc = self.ctx.encoder
        if isinstance(ty, T.TBool):
            return SBool(mgr.var(level)), level + 1
        if isinstance(ty, T.TInt):
            return SInt(bitvec.var_bits(mgr, level, ty.width)), level + ty.width
        if isinstance(ty, T.TNode):
            w = enc.node_width
            return SNode(bitvec.var_bits(mgr, level, w)), level + w
        if isinstance(ty, T.TEdge):
            w = enc.node_width
            src = SNode(bitvec.var_bits(mgr, level, w))
            dst = SNode(bitvec.var_bits(mgr, level + w, w))
            return SEdge(src, dst), level + 2 * w
        if isinstance(ty, T.TOption):
            tag = mgr.var(level)
            payload, nxt = self.sym_var(ty.elt, level + 1)
            return SOption(tag, payload), nxt
        if isinstance(ty, T.TTuple):
            elts = []
            for t in ty.elts:
                v, level = self.sym_var(t, level)
                elts.append(v)
            return STuple(tuple(elts)), level
        if isinstance(ty, T.TRecord):
            fields = []
            for name, t in ty.fields:
                v, level = self.sym_var(t, level)
                fields.append((name, v))
            return SRecord(tuple(fields)), level
        raise NvEncodingError(f"cannot build symbolic values of type {ty}")

    def predicate_to_bdd(self, pred: Any, key_ty: T.Type) -> int:
        """Interpret a key predicate closure symbolically, yielding its BDD,
        restricted to the valid key domain."""
        key, _ = self.sym_var(key_ty, 0)
        result = self.apply(pred, key)
        bdd = self.to_bdd(result)
        return self.mgr.band(bdd, self.ctx.domain(key_ty))

    def to_bdd(self, value: Any) -> int:
        if isinstance(value, SBool):
            return value.bdd
        if isinstance(value, bool):
            return self.mgr.true if value else self.mgr.false
        raise NvRuntimeError(f"predicate did not evaluate to a boolean: {value!r}")

    # -- lifting --------------------------------------------------------

    def lift_like(self, concrete: Any, shape: Any) -> Any:
        """Lift a concrete value to the symbolic shape of ``shape``."""
        mgr = self.mgr
        if isinstance(shape, SBool):
            return SBool(mgr.true if concrete else mgr.false)
        if isinstance(shape, SEdge):
            u, v = concrete
            w = len(shape.src.bits)
            return SEdge(SNode(bitvec.const_bits(mgr, u, w)),
                         SNode(bitvec.const_bits(mgr, v, w)))
        if isinstance(shape, SInt):
            return type(shape)(bitvec.const_bits(mgr, concrete, len(shape.bits)),
                               shape.width)
        if isinstance(shape, SOption):
            if concrete is None:
                payload_zero = self._zero_like(shape.payload)
                return SOption(mgr.false, payload_zero)
            if isinstance(concrete, VSome):
                return SOption(mgr.true, self.lift_like(concrete.value, shape.payload))
        if isinstance(shape, STuple):
            return STuple(tuple(self.lift_like(c, s)
                                for c, s in zip(concrete, shape.elts)))
        if isinstance(shape, SRecord):
            return SRecord(tuple((n, self.lift_like(concrete.get(n), s))
                                 for n, s in shape.fields))
        raise NvEncodingError(f"cannot lift {concrete!r} to shape {type(shape).__name__}")

    def _zero_like(self, shape: Any) -> Any:
        mgr = self.mgr
        if isinstance(shape, SBool):
            return SBool(mgr.false)
        if isinstance(shape, SEdge):
            w = len(shape.src.bits)
            zero = lambda: SNode([mgr.false] * w)  # noqa: E731
            return SEdge(zero(), zero())
        if isinstance(shape, SInt):
            return type(shape)([mgr.false] * len(shape.bits), shape.width)
        if isinstance(shape, SOption):
            return SOption(mgr.false, self._zero_like(shape.payload))
        if isinstance(shape, STuple):
            return STuple(tuple(self._zero_like(s) for s in shape.elts))
        if isinstance(shape, SRecord):
            return SRecord(tuple((n, self._zero_like(s)) for n, s in shape.fields))
        # Concrete shapes stay concrete.
        return shape

    def lift_by_type(self, concrete: Any, ty: T.Type) -> Any:
        """Lift using a type instead of an existing symbolic shape."""
        shape, _ = self.sym_var(ty, 0)
        return self.lift_like(concrete, shape)

    # -- merging under a symbolic condition -----------------------------

    def ite(self, cond: int, a: Any, b: Any, ty: T.Type | None = None) -> Any:
        mgr = self.mgr
        if cond == mgr.true:
            return a
        if cond == mgr.false:
            return b
        a_sym = isinstance(a, Sym)
        b_sym = isinstance(b, Sym)
        if not a_sym and not b_sym:
            if _concrete_eq(a, b):
                return a
            if ty is not None and not isinstance(ty, (T.TArrow, T.TDict)):
                a = self.lift_by_type(a, ty)
                b = self.lift_by_type(b, ty)
            else:
                raise NvEncodingError(
                    "cannot merge distinct non-finitary values under a symbolic "
                    f"condition: {a!r} vs {b!r}")
        elif not a_sym:
            a = self.lift_like(a, b)
        elif not b_sym:
            b = self.lift_like(b, a)
        return self._ite_sym(cond, a, b)

    def _ite_sym(self, cond: int, a: Any, b: Any) -> Any:
        mgr = self.mgr
        if isinstance(a, SBool) and isinstance(b, SBool):
            return SBool(mgr.bite(cond, a.bdd, b.bdd))
        if isinstance(a, SEdge) and isinstance(b, SEdge):
            return SEdge(self._ite_sym(cond, a.src, b.src),
                         self._ite_sym(cond, a.dst, b.dst))
        if isinstance(a, SInt) and isinstance(b, SInt):
            if len(a.bits) != len(b.bits):
                raise NvEncodingError("width mismatch in symbolic merge")
            cls = SNode if isinstance(a, SNode) else SInt
            return cls(bitvec.ite_bits(mgr, cond, a.bits, b.bits), a.width)
        if isinstance(a, SOption) and isinstance(b, SOption):
            pa, pb = a.payload, b.payload
            if not isinstance(pa, Sym):
                pa = self.lift_like(pa, pb) if isinstance(pb, Sym) else pa
            if not isinstance(pb, Sym):
                pb = self.lift_like(pb, pa) if isinstance(pa, Sym) else pb
            if isinstance(pa, Sym) or isinstance(pb, Sym):
                payload = self._ite_sym(cond, pa, pb)
            else:
                payload = pa if _concrete_eq(pa, pb) else self._merge_concrete(cond, pa, pb)
            return SOption(mgr.bite(cond, a.tag, b.tag), payload)
        if isinstance(a, STuple) and isinstance(b, STuple):
            return STuple(tuple(self._pairwise_ite(cond, x, y)
                                for x, y in zip(a.elts, b.elts)))
        if isinstance(a, SRecord) and isinstance(b, SRecord):
            return SRecord(tuple((n, self._pairwise_ite(cond, x, y))
                                 for (n, x), (_, y) in zip(a.fields, b.fields)))
        raise NvEncodingError(
            f"cannot merge {type(a).__name__} with {type(b).__name__}")

    def _pairwise_ite(self, cond: int, x: Any, y: Any) -> Any:
        if isinstance(x, Sym) or isinstance(y, Sym):
            if not isinstance(x, Sym):
                x = self.lift_like(x, y)
            if not isinstance(y, Sym):
                y = self.lift_like(y, x)
            return self._ite_sym(cond, x, y)
        if _concrete_eq(x, y):
            return x
        return self._merge_concrete(cond, x, y)

    def _merge_concrete(self, cond: int, a: Any, b: Any) -> Any:
        """Merge two unequal concrete values: lift both via an inferred shape."""
        shape = _shape_of_concrete(self, a)
        return self._ite_sym(cond, self.lift_like(a, shape), self.lift_like(b, shape))

    # -- application -----------------------------------------------------

    def apply(self, fn: Any, arg: Any) -> Any:
        body, param, env = _closure_parts(fn)
        new_env = dict(env)
        new_env[param] = arg
        return self.eval(body, new_env)

    # -- the evaluator ----------------------------------------------------

    def eval(self, e: A.Expr, env: dict[str, Any]) -> Any:
        if isinstance(e, A.EVar):
            try:
                return env[e.name]
            except KeyError:
                raise NvRuntimeError(f"unbound variable {e.name!r}") from None
        if isinstance(e, (A.EBool, A.EInt, A.ENode, A.EEdge, A.ENone)):
            return self.interp._eval(e, env)
        if isinstance(e, A.ESome):
            sub = self.eval(e.sub, env)
            if isinstance(sub, Sym):
                return SOption(self.mgr.true, sub)
            return VSome(sub)
        if isinstance(e, A.ETuple):
            elts = tuple(self.eval(x, env) for x in e.elts)
            if any(isinstance(x, Sym) for x in elts):
                return STuple(elts)
            return elts
        if isinstance(e, A.ETupleGet):
            sub = self.eval(e.sub, env)
            if isinstance(sub, STuple):
                return sub.elts[e.index]
            if isinstance(sub, SEdge):
                return sub.src if e.index == 0 else sub.dst
            return sub[e.index]
        if isinstance(e, A.ERecord):
            fields = tuple((n, self.eval(x, env)) for n, x in e.fields)
            if any(isinstance(v, Sym) for _, v in fields):
                return SRecord(fields)
            return VRecord(fields)
        if isinstance(e, A.ERecordWith):
            base = self.eval(e.base, env)
            updates = {n: self.eval(x, env) for n, x in e.updates}
            if isinstance(base, SRecord):
                return SRecord(tuple((n, updates.get(n, v)) for n, v in base.fields))
            if any(isinstance(v, Sym) for v in updates.values()):
                return SRecord(tuple((n, updates.get(n, v)) for n, v in base.fields))
            return base.with_updates(updates)
        if isinstance(e, A.EProj):
            base = self.eval(e.sub, env)
            if isinstance(base, SRecord):
                return base.get(e.label)
            return base.get(e.label)
        if isinstance(e, A.EIf):
            cond = self.eval(e.cond, env)
            if not isinstance(cond, Sym):
                return self.eval(e.then if cond else e.els, env)
            then_v = self.eval(e.then, env)
            else_v = self.eval(e.els, env)
            return self.ite(cond.bdd, then_v, else_v, e.ty)
        if isinstance(e, A.ELet):
            new_env = dict(env)
            new_env[e.name] = self.eval(e.bound, env)
            return self.eval(e.body, new_env)
        if isinstance(e, A.ELetPat):
            bound = self.eval(e.bound, env)
            cond, bindings = self.sym_match(e.pat, bound)
            if cond != self.mgr.true:
                raise NvRuntimeError("irrefutable let pattern may fail symbolically")
            new_env = dict(env)
            new_env.update(bindings)
            return self.eval(e.body, new_env)
        if isinstance(e, A.EFun):
            return VClosure(e.param, e.body, env, e.param_ty)
        if isinstance(e, A.EApp):
            fn = self.eval(e.fn, env)
            arg = self.eval(e.arg, env)
            if isinstance(fn, Sym):
                raise NvEncodingError("cannot apply a symbolic function value")
            if isinstance(arg, Sym) or _env_mentions_sym(fn):
                return self.apply(fn, arg)
            return self.interp.apply(fn, arg)
        if isinstance(e, A.EMatch):
            return self.eval_match(e, env)
        if isinstance(e, A.EOp):
            return self.eval_op(e, env)
        raise NvRuntimeError(f"cannot symbolically evaluate {type(e).__name__}")

    def eval_match(self, e: A.EMatch, env: dict[str, Any]) -> Any:
        scrutinee = self.eval(e.scrutinee, env)
        if not isinstance(scrutinee, Sym):
            from .interp import match_pattern
            for pat, body in e.branches:
                bindings = match_pattern(pat, scrutinee)
                if bindings is not None:
                    new_env = dict(env)
                    new_env.update(bindings)
                    return self.eval(body, new_env)
            raise NvRuntimeError(f"match failure on {scrutinee!r}")
        mgr = self.mgr
        arms: list[tuple[int, Any]] = []
        remaining = mgr.true
        for pat, body in e.branches:
            cond, bindings = self.sym_match(pat, scrutinee)
            cond = mgr.band(cond, remaining)
            if cond == mgr.false:
                continue
            new_env = dict(env)
            new_env.update(bindings)
            arms.append((cond, self.eval(body, new_env)))
            remaining = mgr.band(remaining, mgr.bnot(cond))
            if remaining == mgr.false:
                break
        if remaining != mgr.false:
            raise NvRuntimeError("symbolic match may be non-exhaustive")
        if not arms:
            raise NvRuntimeError("symbolic match has no reachable branches")
        result = arms[-1][1]
        for cond, value in reversed(arms[:-1]):
            result = self.ite(cond, value, result, e.ty)
        return result

    def sym_match(self, pat: A.Pattern, value: Any) -> tuple[int, dict[str, Any]]:
        """Match a possibly-symbolic value; returns (condition BDD, bindings)."""
        mgr = self.mgr
        if isinstance(pat, A.PWild):
            return mgr.true, {}
        if isinstance(pat, A.PVar):
            return mgr.true, {pat.name: value}
        if not isinstance(value, Sym):
            from .interp import match_pattern
            bindings = match_pattern(pat, value)
            if bindings is None:
                return mgr.false, {}
            return mgr.true, bindings
        if isinstance(pat, A.PBool):
            bdd = value.bdd if pat.value else mgr.bnot(value.bdd)
            return bdd, {}
        if isinstance(pat, A.PInt):
            const = bitvec.const_bits(mgr, pat.value, len(value.bits))
            return bitvec.eq(mgr, value.bits, const), {}
        if isinstance(pat, A.PNode):
            const = bitvec.const_bits(mgr, pat.value, len(value.bits))
            return bitvec.eq(mgr, value.bits, const), {}
        if isinstance(pat, A.PNone):
            return mgr.bnot(value.tag), {}
        if isinstance(pat, A.PSome):
            cond, bindings = self.sym_match(pat.sub, value.payload)
            return mgr.band(value.tag, cond), bindings
        if isinstance(pat, (A.PTuple, A.PEdge)):
            subs = pat.elts if isinstance(pat, A.PTuple) else (pat.src, pat.dst)
            if isinstance(value, SEdge):
                parts: tuple[Any, ...] = (value.src, value.dst)
            elif isinstance(value, STuple):
                parts = value.elts
            else:
                raise NvEncodingError(f"tuple pattern against {type(value).__name__}")
            cond = mgr.true
            bindings = {}
            for p, v in zip(subs, parts):
                c, b = self.sym_match(p, v)
                cond = mgr.band(cond, c)
                bindings.update(b)
            return cond, bindings
        if isinstance(pat, A.PRecord):
            cond = mgr.true
            bindings = {}
            for name, p in pat.fields:
                c, b = self.sym_match(p, value.get(name))
                cond = mgr.band(cond, c)
                bindings.update(b)
            return cond, bindings
        raise NvRuntimeError(f"unsupported pattern {pat}")

    def eval_op(self, e: A.EOp, env: dict[str, Any]) -> Any:
        mgr = self.mgr
        op = e.op
        if op in ("and", "or"):
            a = self.eval(e.args[0], env)
            if not isinstance(a, Sym):
                if op == "and" and not a:
                    return False
                if op == "or" and a:
                    return True
                return self.eval(e.args[1], env)
            b = self.eval(e.args[1], env)
            ab = self.to_bdd(a)
            bb = self.to_bdd(b)
            return SBool(mgr.band(ab, bb) if op == "and" else mgr.bor(ab, bb))
        if op == "not":
            a = self.eval(e.args[0], env)
            if isinstance(a, Sym):
                return SBool(mgr.bnot(self.to_bdd(a)))
            return not a
        if op in ("add", "sub", "eq", "lt", "le"):
            a = self.eval(e.args[0], env)
            b = self.eval(e.args[1], env)
            if not isinstance(a, Sym) and not isinstance(b, Sym):
                return _concrete_binop(op, a, b, e)
            if not isinstance(a, Sym):
                a = self.lift_like(a, b)
            if not isinstance(b, Sym):
                b = self.lift_like(b, a)
            if op == "eq":
                return SBool(self.sym_eq(a, b))
            if op in ("lt", "le"):
                fn = bitvec.ult if op == "lt" else bitvec.ule
                return SBool(fn(mgr, a.bits, b.bits))
            fn2 = bitvec.add if op == "add" else bitvec.sub
            return SInt(fn2(mgr, a.bits, b.bits), a.width)
        if op in ("mcreate", "mget", "mset", "mmap", "mmapite", "mcombine"):
            args = [self.eval(x, env) for x in e.args]
            if any(isinstance(x, Sym) for x in args):
                raise NvEncodingError(
                    "map operations over symbolic keys are not supported inside "
                    "mapIte key predicates (paper §3.1 restricts key usage)")
            return self.interp._eval_op(e, env)
        raise NvRuntimeError(f"unknown operator {op!r}")

    def sym_eq(self, a: Any, b: Any) -> int:
        """Structural symbolic equality; returns a BDD."""
        mgr = self.mgr
        if not isinstance(a, Sym) and not isinstance(b, Sym):
            return mgr.true if _concrete_eq(a, b) else mgr.false
        if not isinstance(a, Sym):
            a = self.lift_like(a, b)
        if not isinstance(b, Sym):
            b = self.lift_like(b, a)
        if isinstance(a, SBool) and isinstance(b, SBool):
            return mgr.biff(a.bdd, b.bdd)
        if isinstance(a, SEdge) and isinstance(b, SEdge):
            return mgr.band(self.sym_eq(a.src, b.src), self.sym_eq(a.dst, b.dst))
        if isinstance(a, SInt) and isinstance(b, SInt):
            return bitvec.eq(mgr, a.bits, b.bits)
        if isinstance(a, SOption) and isinstance(b, SOption):
            tags = mgr.biff(a.tag, b.tag)
            payload = self.sym_eq(a.payload, b.payload)
            both_some = mgr.band(a.tag, b.tag)
            # Equal iff tags agree and, when both Some, payloads agree.
            return mgr.band(tags, mgr.bimplies(both_some, payload))
        if isinstance(a, STuple) and isinstance(b, STuple):
            out = mgr.true
            for x, y in zip(a.elts, b.elts):
                out = mgr.band(out, self.sym_eq(x, y))
            return out
        if isinstance(a, SRecord) and isinstance(b, SRecord):
            out = mgr.true
            for (_, x), (_, y) in zip(a.fields, b.fields):
                out = mgr.band(out, self.sym_eq(x, y))
            return out
        raise NvEncodingError(
            f"cannot compare {type(a).__name__} with {type(b).__name__}")


def _concrete_eq(a: Any, b: Any) -> bool:
    try:
        return bool(a == b)
    except Exception:
        return False


def _concrete_binop(op: str, a: Any, b: Any, e: A.EOp) -> Any:
    if op == "eq":
        return a == b
    if op == "lt":
        return a < b
    if op == "le":
        return a <= b
    width = e.ty.width if isinstance(e.ty, T.TInt) else 32
    mask = (1 << width) - 1
    return (a + b) & mask if op == "add" else (a - b) & mask


def _closure_parts(fn: Any) -> tuple[A.Expr, str, dict[str, Any]]:
    if isinstance(fn, VClosure):
        return fn.body, fn.param, fn.env
    body = getattr(fn, "nv_body", None)
    if body is not None:
        return body, fn.nv_param, fn.nv_env
    raise NvEncodingError(
        "cannot interpret this function symbolically: no NV AST attached")


def _env_mentions_sym(fn: Any) -> bool:
    if isinstance(fn, VClosure):
        return any(isinstance(v, Sym) for v in fn.env.values())
    return False


def _shape_of_concrete(ev: SymbolicEvaluator, value: Any) -> Any:
    """Infer a symbolic shape from a concrete value (defaulting ints to the
    interpreter's 32-bit width when nothing better is known)."""
    mgr = ev.mgr
    if isinstance(value, bool):
        return SBool(mgr.false)
    if isinstance(value, int):
        return SInt([mgr.false] * 32, 32)
    if value is None:
        raise NvEncodingError("cannot infer a shape for a bare None; annotate types")
    if isinstance(value, VSome):
        return SOption(mgr.false, _shape_of_concrete(ev, value.value))
    if isinstance(value, tuple):
        return STuple(tuple(_shape_of_concrete(ev, v) for v in value))
    if isinstance(value, VRecord):
        return SRecord(tuple((n, _shape_of_concrete(ev, v)) for n, v in value.fields))
    raise NvEncodingError(f"cannot infer a symbolic shape for {value!r}")
