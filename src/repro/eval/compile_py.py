"""The native simulation backend: compile NV to Python (paper §5.1).

The original system translates NV's computational core to OCaml, compiles it
natively and links it with the simulator.  The analogue here is compiling NV
to Python source, ``compile()``-ing it and executing the resulting closures —
removing the per-node interpretive overhead of the AST-walking evaluator,
which is exactly the architectural split the paper measures (fig 13c/14).

Two pieces of the embedding/unembedding story carry over directly:

* compiled closures still exchange the same runtime values (``VRecord``,
  ``VSome``, ``NVMap``), so MTBDD leaves hold compiled-world values without
  conversion; and
* functions that cross into the MTBDD layer (``mapIte`` predicates) carry
  their NV AST (``nv_body``/``nv_param``/``nv_env`` attributes) so the
  symbolic BDD builder can interpret them, and a structural
  ``nv_cache_key`` so diagram-operation memo tables survive closure
  re-creation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from .. import telemetry
from ..lang import ast as A
from ..lang import types as T
from ..lang.errors import NvEncodingError, NvRuntimeError
from .interp import Interpreter
from .maps import MapContext, NVMap
from .values import VRecord, VSome


@dataclass
class CompiledProgram:
    env: dict[str, Any]
    source: str
    compile_seconds: float
    # The module's shared diagram-op memo registry (``__memos``): batch
    # entry points built *outside* the generated code (see
    # ``compile_network_functions``) need it to join the same memo tables
    # the compiled closures use.
    memos: dict[Any, dict] = field(default_factory=dict)


class _Emitter:
    def __init__(self) -> None:
        self.lines: list[str] = []
        self.indent = 0

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class PyCompiler:
    def __init__(self, ctx: MapContext) -> None:
        self.ctx = ctx
        self._tmp = itertools.count()
        self._fn = itertools.count()
        # Compile-time constant pools passed to the generated module.
        self.types: list[T.Type] = []
        self.asts: list[A.Expr] = []

    def fresh(self, base: str = "t") -> str:
        return f"__{base}{next(self._tmp)}"

    def type_index(self, ty: T.Type) -> int:
        for i, existing in enumerate(self.types):
            if existing == ty:
                return i
        self.types.append(ty)
        return len(self.types) - 1

    def ast_index(self, e: A.Expr) -> int:
        self.asts.append(e)
        return len(self.asts) - 1

    # ------------------------------------------------------------------
    # Program compilation
    # ------------------------------------------------------------------

    def compile_program(self, program: A.Program,
                        symbolics: dict[str, Any] | None = None) -> CompiledProgram:
        t0 = perf_counter()
        symbolics = symbolics or {}
        # Alpha-rename first: NV lets may shadow, but Python closures capture
        # by cell, so shadowed reassignments would corrupt earlier captures.
        from ..transform.rename import rename_program
        program = rename_program(program)
        em = _Emitter()
        top_names: list[str] = []
        for d in program.decls:
            if isinstance(d, A.DSymbolic):
                if d.name not in symbolics:
                    raise NvRuntimeError(
                        f"symbolic {d.name!r} needs a concrete value for compilation")
                top_names.append(d.name)
            elif isinstance(d, A.DLet):
                result = self.compile_expr(d.expr, em)
                em.emit(f"{_mangle(d.name)} = {result}")
                top_names.append(d.name)
            elif isinstance(d, A.DRequire):
                result = self.compile_expr(d.expr, em)
                em.emit(f"if not ({result}):")
                em.indent += 1
                em.emit("raise NvRuntimeError('require clause violated')")
                em.indent -= 1

        source = em.source()
        code = compile(source, "<nv-compiled>", "exec")
        interp = Interpreter(self.ctx)
        memos: dict[Any, dict] = {}
        module_globals: dict[str, Any] = {
            "VSome": VSome,
            "VRecord": VRecord,
            "NVMap": NVMap,
            "NvRuntimeError": NvRuntimeError,
            "__ctx": self.ctx,
            "__types": self.types,
            "__asts": self.asts,
            "__interp": interp,
            "__memos": memos,
            "__map_op": _map_op,
            "__combine_op": _combine_op,
            "__mapite_op": _mapite_op(interp, memos),
        }
        for name, value in symbolics.items():
            module_globals[_mangle(name)] = value
        exec(code, module_globals)
        env = {name: module_globals[_mangle(name)] for name in top_names}
        return CompiledProgram(env, source, perf_counter() - t0, memos)

    # ------------------------------------------------------------------
    # Expression compilation: returns a Python expression string, emitting
    # any supporting statements into the emitter.
    # ------------------------------------------------------------------

    def compile_expr(self, e: A.Expr, em: _Emitter) -> str:
        if isinstance(e, A.EVar):
            return _mangle(e.name)
        if isinstance(e, A.EBool):
            return "True" if e.value else "False"
        if isinstance(e, A.EInt):
            return repr(e.value & ((1 << e.width) - 1))
        if isinstance(e, A.ENode):
            return repr(e.value)
        if isinstance(e, A.EEdge):
            return f"({e.src}, {e.dst})"
        if isinstance(e, A.ENone):
            return "None"
        if isinstance(e, A.ESome):
            return f"VSome({self.compile_expr(e.sub, em)})"
        if isinstance(e, A.ETuple):
            inner = ", ".join(self.compile_expr(x, em) for x in e.elts)
            return f"({inner},)" if len(e.elts) == 1 else f"({inner})"
        if isinstance(e, A.ETupleGet):
            return f"{self.compile_expr(e.sub, em)}[{e.index}]"
        if isinstance(e, A.ERecord):
            inner = ", ".join(f"({name!r}, {self.compile_expr(x, em)})"
                              for name, x in e.fields)
            return f"VRecord(({inner},))"
        if isinstance(e, A.ERecordWith):
            base = self.compile_expr(e.base, em)
            updates = ", ".join(f"{name!r}: {self.compile_expr(x, em)}"
                                for name, x in e.updates)
            return f"{base}.with_updates({{{updates}}})"
        if isinstance(e, A.EProj):
            sub = self.compile_expr(e.sub, em)
            # Resolve the field offset at compile time when the record type
            # is known: `proj` is a bounds-checked positional access, far
            # cheaper than a name lookup on the BGP-style hot paths.
            sub_ty = getattr(e.sub, "ty", None)
            if isinstance(sub_ty, T.TRecord):
                for i, (name, _) in enumerate(sub_ty.fields):
                    if name == e.label:
                        return f"{sub}.proj({i}, {e.label!r})"
            return f"{sub}.get({e.label!r})"
        if isinstance(e, A.EIf):
            cond = self.compile_expr(e.cond, em)
            out = self.fresh("if")
            em.emit(f"if {cond}:")
            em.indent += 1
            then = self.compile_expr(e.then, em)
            em.emit(f"{out} = {then}")
            em.indent -= 1
            em.emit("else:")
            em.indent += 1
            els = self.compile_expr(e.els, em)
            em.emit(f"{out} = {els}")
            em.indent -= 1
            return out
        if isinstance(e, A.ELet):
            bound = self.compile_expr(e.bound, em)
            em.emit(f"{_mangle(e.name)} = {bound}")
            return self.compile_expr(e.body, em)
        if isinstance(e, A.ELetPat):
            bound = self.compile_expr(e.bound, em)
            tmp = self.fresh("lp")
            em.emit(f"{tmp} = {bound}")
            cond, bindings = self.compile_pattern(e.pat, tmp)
            if cond != "True":
                em.emit(f"if not ({cond}):")
                em.indent += 1
                em.emit("raise NvRuntimeError('let pattern failed')")
                em.indent -= 1
            for stmt in bindings:
                em.emit(stmt)
            return self.compile_expr(e.body, em)
        if isinstance(e, A.EFun):
            return self.compile_fun(e, em)
        if isinstance(e, A.EApp):
            fn = self.compile_expr(e.fn, em)
            arg = self.compile_expr(e.arg, em)
            return f"{fn}({arg})"
        if isinstance(e, A.EMatch):
            return self.compile_match(e, em)
        if isinstance(e, A.EOp):
            return self.compile_op(e, em)
        raise NvEncodingError(f"cannot compile {type(e).__name__}")

    def compile_fun(self, e: A.EFun, em: _Emitter) -> str:
        # Eta-reduction: `fun x -> f x` (x not free in f) compiles to `f`
        # itself.  NV is pure and non-recursive, so evaluating `f` eagerly is
        # sound — and it is a large win: the front end eta-expands transfer
        # functions per edge (`map (transRoute e) m`), and reducing the
        # wrapper exposes the *underlying* closure's ``nv_cache_key``, letting
        # every edge share one diagram-operation memo table instead of each
        # keeping its own.
        body = e.body
        if (isinstance(body, A.EApp) and isinstance(body.arg, A.EVar)
                and body.arg.name == e.param
                and e.param not in A.free_vars(body.fn)):
            return self.compile_expr(body.fn, em)
        name = f"__fn{next(self._fn)}"
        em.emit(f"def {name}({_mangle(e.param)}):")
        em.indent += 1
        result = self.compile_expr(e.body, em)
        em.emit(f"return {result}")
        em.indent -= 1
        # Attach the NV AST and captured environment so the MTBDD layer can
        # interpret this function symbolically (mapIte predicates), and a
        # structural cache key for diagram-operation memo tables.
        free = sorted(A.free_vars(e.body) - {e.param})
        ast_ix = self.ast_index(e.body)
        env_items = ", ".join(f"{v!r}: {_mangle(v)}" for v in free)
        em.emit(f"{name}.nv_param = {e.param!r}")
        em.emit(f"{name}.nv_body = __asts[{ast_ix}]")
        em.emit(f"{name}.nv_env = {{{env_items}}}")
        captured = ", ".join(_mangle(v) for v in free)
        trailing = "," if free else ""
        em.emit(f"{name}.nv_cache_key = ({ast_ix}, ({captured}{trailing}))")
        return name

    def compile_match(self, e: A.EMatch, em: _Emitter) -> str:
        scrut = self.compile_expr(e.scrutinee, em)
        tmp = self.fresh("m")
        em.emit(f"{tmp} = {scrut}")
        out = self.fresh("r")
        first = True
        for pat, body in e.branches:
            cond, bindings = self.compile_pattern(pat, tmp)
            keyword = "if" if first else "elif"
            first = False
            em.emit(f"{keyword} {cond}:")
            em.indent += 1
            for stmt in bindings:
                em.emit(stmt)
            result = self.compile_expr(body, em)
            em.emit(f"{out} = {result}")
            em.indent -= 1
        em.emit("else:")
        em.indent += 1
        em.emit(f"raise NvRuntimeError('match failure on %r' % ({tmp},))")
        em.indent -= 1
        return out

    def compile_pattern(self, pat: A.Pattern, path: str
                        ) -> tuple[str, list[str]]:
        """Returns (condition expression, binding statements)."""
        conds: list[str] = []
        bindings: list[str] = []

        def walk(p: A.Pattern, access: str) -> None:
            if isinstance(p, A.PWild):
                return
            if isinstance(p, A.PVar):
                bindings.append(f"{_mangle(p.name)} = {access}")
                return
            if isinstance(p, A.PBool):
                conds.append(f"{access} is {p.value}")
                return
            if isinstance(p, A.PInt):
                conds.append(f"{access} == {p.value}")
                return
            if isinstance(p, A.PNode):
                conds.append(f"{access} == {p.value}")
                return
            if isinstance(p, A.PNone):
                conds.append(f"{access} is None")
                return
            if isinstance(p, A.PSome):
                conds.append(f"{access} is not None")
                walk(p.sub, f"{access}.value")
                return
            if isinstance(p, (A.PTuple, A.PEdge)):
                subs = p.elts if isinstance(p, A.PTuple) else (p.src, p.dst)
                for i, sp in enumerate(subs):
                    walk(sp, f"{access}[{i}]")
                return
            if isinstance(p, A.PRecord):
                for name, sp in p.fields:
                    walk(sp, f"{access}.get({name!r})")
                return
            raise NvEncodingError(f"cannot compile pattern {p}")

        walk(pat, path)
        cond = " and ".join(conds) if conds else "True"
        return cond, bindings

    def compile_op(self, e: A.EOp, em: _Emitter) -> str:
        op = e.op
        args = [self.compile_expr(x, em) for x in e.args]
        if op == "and":
            return f"({args[0]} and {args[1]})"
        if op == "or":
            return f"({args[0]} or {args[1]})"
        if op == "not":
            return f"(not {args[0]})"
        if op in ("add", "sub"):
            width = e.ty.width if isinstance(e.ty, T.TInt) else 32
            mask = (1 << width) - 1
            sign = "+" if op == "add" else "-"
            return f"(({args[0]} {sign} {args[1]}) & {mask})"
        if op == "eq":
            return f"({args[0]} == {args[1]})"
        if op == "lt":
            return f"({args[0]} < {args[1]})"
        if op == "le":
            return f"({args[0]} <= {args[1]})"
        if op == "mcreate":
            if not isinstance(e.ty, T.TDict):
                raise NvEncodingError("createDict requires a typed AST")
            ix = self.type_index(e.ty.key)
            return f"NVMap.create(__ctx, __types[{ix}], {args[0]})"
        if op == "mget":
            return f"{args[0]}.get({args[1]})"
        if op == "mset":
            return f"{args[0]}.set({args[1]}, {args[2]})"
        if op == "mmap":
            return f"__map_op(__memos, {args[0]}, {args[1]})"
        if op == "mcombine":
            return f"__combine_op(__memos, {args[0]}, {args[1]}, {args[2]})"
        if op == "mmapite":
            return f"__mapite_op({args[0]}, {args[1]}, {args[2]}, {args[3]})"
        raise NvEncodingError(f"cannot compile operator {op!r}")


def _mangle(name: str) -> str:
    """NV identifiers may contain quotes (b') and tilde suffixes from
    alpha-renaming; map them to valid Python identifiers."""
    out = name.replace("'", "_pr_").replace("~", "_u_")
    if out in ("and", "or", "not", "if", "else", "in", "is", "def", "return",
               "lambda", "None", "True", "False", "assert", "match", "init",
               "class", "for", "while", "import", "from", "pass", "raise"):
        return out + "_nv"
    return out


def _memo_for(memos: dict[Any, dict], key: Any) -> dict:
    """The shared diagram-op memo for a semantic operation key.

    ``key`` is e.g. ``("map", fn.nv_cache_key)``; calls whose key is
    unhashable (a captured mutable value) fall back to a private dict —
    still correct, just no cross-call sharing.
    """
    try:
        memo = memos.get(key)
    except TypeError:
        return {}
    if memo is None:
        memo = {}
        memos[key] = memo
    return memo


# Per-call-site memo hit-rate attribution (NV_TELEMETRY).  Each semantic
# diagram op (__map_op / __combine_op / __mapite_op) runs once per AST call
# site per invocation, so sampling the manager's apply_hits/apply_misses
# around the op and charging the delta to the site label is exact and adds
# zero per-node cost; disabled, each op pays one boolean check.
_site_stats: dict[str, list[int]] = {}


def take_site_stats() -> dict[str, tuple[int, int, int]]:
    """Snapshot-and-clear ``site -> (calls, hits, misses)`` accumulated
    while telemetry was enabled (see :func:`repro.telemetry.flush_call_sites`)."""
    out = {site: (c[0], c[1], c[2]) for site, c in _site_stats.items()}
    _site_stats.clear()
    return out


def _site_label(kind: str, fn: Any) -> str:
    key = getattr(fn, "nv_cache_key", None)
    if key is not None:
        try:
            return f"{kind}:ast{key[0]}"
        except (TypeError, IndexError):
            return f"{kind}:{key!r}"
    return f"{kind}:{getattr(fn, '__name__', 'fn')}"


def _charge_site(site: str, manager: Any, hits0: int, misses0: int) -> None:
    cell = _site_stats.get(site)
    if cell is None:
        cell = _site_stats[site] = [0, 0, 0]
    cell[0] += 1
    cell[1] += manager.apply_hits - hits0
    cell[2] += manager.apply_misses - misses0


def _map_op(memos: dict[Any, dict], fn: Any, m: NVMap) -> NVMap:
    if not telemetry.is_enabled():
        return m.map(fn, _memo_for(memos, ("map", *_key(fn))))
    mgr = m.ctx.manager
    hits0, misses0 = mgr.apply_hits, mgr.apply_misses
    out = m.map(fn, _memo_for(memos, ("map", *_key(fn))))
    _charge_site(_site_label("map", fn), mgr, hits0, misses0)
    return out


def _combine_op(memos: dict[Any, dict], fn: Any, m1: NVMap, m2: NVMap) -> NVMap:
    # Cache the partial application fn(x) per distinct left leaf: curried
    # compiled closures attach nv_* metadata on every call, and combine
    # pairs each left leaf with many right leaves.  Leaf values are owned by
    # the (interning) BDD manager, so their ids are stable cache keys.
    partial: dict[int, Any] = {}

    def fn2(x: Any, y: Any) -> Any:
        fx = partial.get(id(x))
        if fx is None:
            fx = fn(x)
            partial[id(x)] = fx
        return fx(y)

    if not telemetry.is_enabled():
        return m1.combine(fn2, m2, _memo_for(memos, ("combine", *_key(fn))))
    mgr = m1.ctx.manager
    hits0, misses0 = mgr.apply_hits, mgr.apply_misses
    out = m1.combine(fn2, m2, _memo_for(memos, ("combine", *_key(fn))))
    _charge_site(_site_label("combine", fn), mgr, hits0, misses0)
    return out


def _key(fn: Any) -> tuple:
    key = getattr(fn, "nv_cache_key", None)
    # Closures without nv_* metadata key on the function object itself, not
    # id(fn): the memo table then keeps fn alive, so a collected closure's
    # id can never be recycled onto a different function and serve it memo
    # entries computed for the old one.
    return (key,) if key is not None else (fn,)


def _mapite_op(interp: Interpreter, memos: dict[Any, dict]):
    # The main memo is keyed by the function pair (the pred's node id is
    # packed into each memo key, so one table serves every predicate); the
    # branch memos use apply1 keying and share the ("map", key) tables with
    # plain ``map`` calls of the same closure.
    def run(pred: Any, fn_true: Any, fn_false: Any, m: NVMap) -> NVMap:
        pred_bdd = interp.predicate_bdd(pred, m.key_ty)
        memo = _memo_for(
            memos, ("mapite", *_key(fn_true), *_key(fn_false)))
        if not telemetry.is_enabled():
            return m.map_ite(pred_bdd, fn_true, fn_false, memo,
                             _memo_for(memos, ("map", *_key(fn_true))),
                             _memo_for(memos, ("map", *_key(fn_false))))
        mgr = m.ctx.manager
        hits0, misses0 = mgr.apply_hits, mgr.apply_misses
        out = m.map_ite(pred_bdd, fn_true, fn_false, memo,
                        _memo_for(memos, ("map", *_key(fn_true))),
                        _memo_for(memos, ("map", *_key(fn_false))))
        _charge_site(_site_label("mapite", fn_true), mgr, hits0, misses0)
        return out
    return run


def _compiled_merge_many(program: A.Program, env: dict[str, Any],
                         memos: dict[Any, dict], ctx: MapContext,
                         merge: Any):
    """Batch form of the compiled ``merge`` for the fig-5 shape
    ``merge u x y = combine (base u) x y`` with ``base`` a top-level name.

    The batch joins the exact memo tables the compiled ``__combine_op``
    uses (``("combine", fn.nv_cache_key)``), so scalar and batched merges
    of the same node stay one dedup domain.  Other shapes return ``None``
    (there is no compiled ``trans_many``: the mapIte predicate must pass
    through the symbolic-BDD builder per edge anyway, and the interpreted
    driver's batch form already covers the fig 5 transfer)."""
    decl = next((d for d in program.decls
                 if isinstance(d, A.DLet) and d.name == "merge"), None)
    if decl is None:
        return None
    e = decl.expr
    if not (isinstance(e, A.EFun) and isinstance(e.body, A.EFun)
            and isinstance(e.body.body, A.EFun)):
        return None
    u_param, x_param, y_param = e.param, e.body.param, e.body.body.param
    body = e.body.body.body
    if not (isinstance(body, A.EOp) and body.op == "mcombine"
            and isinstance(body.args[1], A.EVar)
            and body.args[1].name == x_param
            and isinstance(body.args[2], A.EVar)
            and body.args[2].name == y_param):
        return None
    fn_expr = body.args[0]
    if not (isinstance(fn_expr, A.EApp) and isinstance(fn_expr.fn, A.EVar)
            and isinstance(fn_expr.arg, A.EVar)
            and fn_expr.arg.name == u_param
            and fn_expr.fn.name in env):
        return None
    base_f = env[fn_expr.fn.name]
    per_u: dict[int, tuple[Any, dict]] = {}

    def merge_many(items):
        from .maps import combine_many

        batch: list = []
        out: list = [None] * len(items)
        slots: list[int] = []
        for i, (u, x, y) in enumerate(items):
            if not (isinstance(x, NVMap) and isinstance(y, NVMap)):
                out[i] = merge(u, x, y)
                continue
            ent = per_u.get(u)
            if ent is None:
                fn = base_f(u)
                partial: dict[int, Any] = {}

                def fn2(a: Any, b: Any, _fn=fn, _partial=partial) -> Any:
                    fa = _partial.get(id(a))
                    if fa is None:
                        fa = _fn(a)
                        _partial[id(a)] = fa
                    return fa(b)

                ent = (fn2, _memo_for(memos, ("combine", *_key(fn))))
                per_u[u] = ent
            fn2, memo = ent
            slots.append(i)
            batch.append((fn2, x, y, memo))
        if batch:
            for i, m in zip(slots, combine_many(batch)):
                out[i] = m
        return out

    return merge_many


def compile_network_functions(net: Any, symbolics: dict[str, Any] | None = None,
                              ctx: MapContext | None = None,
                              interp: Interpreter | None = None):
    """Drop-in replacement for
    :func:`repro.srp.network.functions_from_program` using the compiled
    backend (the ``functions_factory`` hook of the analysis drivers)."""
    from ..srp.network import NetworkFunctions

    if ctx is None:
        ctx = MapContext(net.num_nodes, net.edges)
    compiler = PyCompiler(ctx)
    compiled = compiler.compile_program(net.program, symbolics)
    env = compiled.env

    init_f = env["init"]
    trans_f = env["trans"]
    merge_f = env["merge"]
    assert_f = env.get("assert")

    # Partially-applied closures per edge/node, created once: closure
    # creation in compiled code attaches nv_* metadata, which is wasted work
    # when the simulator calls the same edge/node millions of times.
    trans_partials: dict[tuple[int, int], Any] = {}
    merge_partials: dict[int, Any] = {}

    def trans(edge: tuple[int, int], x: Any) -> Any:
        f = trans_partials.get(edge)
        if f is None:
            f = trans_partials[edge] = trans_f(edge)
        return f(x)

    def merge(u: int, x: Any, y: Any) -> Any:
        f = merge_partials.get(u)
        if f is None:
            f = merge_partials[u] = merge_f(u)
        return f(x)(y)

    assert_fn = None
    if assert_f is not None:
        def assert_fn(u: int, x: Any) -> bool:  # noqa: F811
            return bool(assert_f(u)(x))

    funcs = NetworkFunctions(net.num_nodes, net.edges, init_f, trans, merge,
                             assert_fn, ctx, net.attr_ty,
                             merge_many=_compiled_merge_many(
                                 net.program, env, compiled.memos, ctx, merge))
    funcs.compile_seconds = compiled.compile_seconds  # type: ignore[attr-defined]
    funcs.compiled_source = compiled.source           # type: ignore[attr-defined]
    return funcs
