"""NV evaluation: interpreter, MTBDD maps, symbolic predicates, compiler."""

from .interp import Interpreter, program_env
from .maps import MapContext, NVMap
from .values import VClosure, VRecord, VSome

__all__ = ["Interpreter", "program_env", "MapContext", "NVMap",
           "VSome", "VRecord", "VClosure"]
