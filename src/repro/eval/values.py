"""Runtime value model for NV.

NV values map onto Python values as directly as possible (the paper leans on
NV's "close correspondence" with its host language):

========================  =======================================
NV type                   Python representation
========================  =======================================
``bool``                  ``bool``
``intN``                  non-negative ``int`` < 2**N
``node``                  ``int`` (node index)
``edge``                  ``(int, int)`` tuple
``option[t]``             ``None`` or :class:`VSome`
tuples                    ``tuple``
records                   :class:`VRecord`
``dict[k, v]``            :class:`repro.eval.maps.NVMap`
functions                 :class:`VClosure` or a compiled callable
========================  =======================================

Everything except closures and maps is immutable and hashable, so any
first-order value can live in an MTBDD leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class VSome:
    """A present optional value (``Some v``)."""

    value: Any

    def __repr__(self) -> str:
        return f"Some({self.value!r})"


class VRecord:
    """An immutable record value with ordered named fields."""

    __slots__ = ("fields", "_hash")

    def __init__(self, fields: tuple[tuple[str, Any], ...]) -> None:
        object.__setattr__(self, "fields", fields)
        object.__setattr__(self, "_hash", hash(fields))

    def get(self, name: str) -> Any:
        for label, value in self.fields:
            if label == name:
                return value
        raise KeyError(f"record has no field {name!r}")

    def with_updates(self, updates: dict[str, Any]) -> "VRecord":
        return VRecord(tuple(
            (label, updates.get(label, value)) for label, value in self.fields
        ))

    def labels(self) -> tuple[str, ...]:
        return tuple(label for label, _ in self.fields)

    def values(self) -> tuple[Any, ...]:
        return tuple(value for _, value in self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VRecord) and self.fields == other.fields

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = "; ".join(f"{label}={value!r}" for label, value in self.fields)
        return "{" + inner + "}"


@dataclass(slots=True, eq=False)
class VClosure:
    """An interpreter closure: a function value carrying its defining
    environment.  The AST is retained so back ends (the MTBDD predicate
    builder, the Python compiler) can re-interpret the body symbolically.

    Closures compare and hash by identity (``eq=False``): top-level closures
    are created once per program evaluation, so identity is a sound and cheap
    cache key for the diagram-operation memo tables."""

    param: str
    body: Any            # repro.lang.ast.Expr
    env: dict[str, Any]
    param_ty: Any = None

    def __repr__(self) -> str:
        return f"<fun {self.param} -> ...>"


def value_repr(value: Any) -> str:
    """Human-readable rendering of an NV value."""
    if value is None:
        return "None"
    if isinstance(value, VSome):
        return f"Some {value_repr(value.value)}"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, tuple):
        return "(" + ", ".join(value_repr(v) for v in value) + ")"
    if isinstance(value, VRecord):
        inner = "; ".join(f"{label}={value_repr(v)}" for label, v in value.fields)
        return "{" + inner + "}"
    return repr(value)
