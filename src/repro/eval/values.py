"""Runtime value model for NV.

NV values map onto Python values as directly as possible (the paper leans on
NV's "close correspondence" with its host language):

========================  =======================================
NV type                   Python representation
========================  =======================================
``bool``                  ``bool``
``intN``                  non-negative ``int`` < 2**N
``node``                  ``int`` (node index)
``edge``                  ``(int, int)`` tuple
``option[t]``             ``None`` or :class:`VSome`
tuples                    ``tuple``
records                   :class:`VRecord`
``dict[k, v]``            :class:`repro.eval.maps.NVMap`
functions                 :class:`VClosure` or a compiled callable
========================  =======================================

Everything except closures and maps is immutable and hashable, so any
first-order value can live in an MTBDD leaf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True)
class VSome:
    """A present optional value (``Some v``)."""

    value: Any

    def __repr__(self) -> str:
        return f"Some({self.value!r})"


# Field-name -> position maps shared across every record of the same shape.
# Records are immutable and shapes come from a handful of type declarations,
# so this table stays tiny while making field lookup O(1) on the simulation
# hot path (BGP merge functions project 6-8 fields per route comparison).
_SHAPE_INDEX: dict[tuple[str, ...], dict[str, int]] = {}


def _shape_index(fields: tuple[tuple[str, Any], ...]) -> dict[str, int]:
    labels = tuple(label for label, _ in fields)
    index = _SHAPE_INDEX.get(labels)
    if index is None:
        index = {label: i for i, label in enumerate(labels)}
        _SHAPE_INDEX[labels] = index
    return index


class VRecord:
    """An immutable record value with ordered named fields."""

    __slots__ = ("fields", "_hash", "_index")

    def __init__(self, fields: tuple[tuple[str, Any], ...]) -> None:
        object.__setattr__(self, "fields", fields)
        object.__setattr__(self, "_hash", hash(fields))
        object.__setattr__(self, "_index", None)

    def get(self, name: str) -> Any:
        index = self._index
        if index is None:
            index = _shape_index(self.fields)
            object.__setattr__(self, "_index", index)
        i = index.get(name)
        if i is None:
            raise KeyError(f"record has no field {name!r}")
        return self.fields[i][1]

    def proj(self, i: int, name: str) -> Any:
        """Positional field access with a label check — the compiled backend
        resolves field offsets at compile time and emits this (falling back
        to :meth:`get` if the runtime shape disagrees)."""
        field = self.fields[i]
        if field[0] is name or field[0] == name:
            return field[1]
        return self.get(name)

    def with_updates(self, updates: dict[str, Any]) -> "VRecord":
        items = list(self.fields)
        index = self._index
        if index is None:
            index = _shape_index(self.fields)
            object.__setattr__(self, "_index", index)
        for name, value in updates.items():
            i = index.get(name)
            if i is None:
                raise KeyError(f"record has no field {name!r}")
            items[i] = (name, value)
        return VRecord(tuple(items))

    def labels(self) -> tuple[str, ...]:
        return tuple(label for label, _ in self.fields)

    def values(self) -> tuple[Any, ...]:
        return tuple(value for _, value in self.fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VRecord) and self.fields == other.fields

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        inner = "; ".join(f"{label}={value!r}" for label, value in self.fields)
        return "{" + inner + "}"


@dataclass(slots=True, eq=False)
class VClosure:
    """An interpreter closure: a function value carrying its defining
    environment.  The AST is retained so back ends (the MTBDD predicate
    builder, the Python compiler) can re-interpret the body symbolically.

    Closures compare and hash by identity (``eq=False``): top-level closures
    are created once per program evaluation, so identity is a sound and cheap
    cache key for the diagram-operation memo tables."""

    param: str
    body: Any            # repro.lang.ast.Expr
    env: dict[str, Any]
    param_ty: Any = None

    def __repr__(self) -> str:
        return f"<fun {self.param} -> ...>"


class ValueInterner:
    """Hash-consing for first-order NV values.

    The simulator interns every route it produces so that (a) equal routes
    are the *same* Python object, making the convergence test and memo-cache
    keys identity-cheap, and (b) per-edge/per-node memo tables can key on
    values without re-hashing deep structures (``VRecord`` caches its hash;
    interned equal values short-circuit dict probes on identity).

    Unhashable values (none occur for well-typed first-order attributes, but
    the simulator is protocol-agnostic) pass through uninterned.
    """

    __slots__ = ("_table", "hits", "misses")

    def __init__(self) -> None:
        self._table: dict[Any, Any] = {}
        self.hits = 0
        self.misses = 0

    def intern(self, value: Any) -> Any:
        table = self._table
        try:
            canon = table.get(value)
        except TypeError:
            return value
        if canon is not None:
            self.hits += 1
            return canon
        # `None` and values comparing equal to None need the explicit check.
        if value in table:
            self.hits += 1
            return value
        self.misses += 1
        table[value] = value
        return value

    def __len__(self) -> int:
        return len(self._table)

    def stats(self) -> dict[str, int]:
        """Instrumentation snapshot (population + probe outcomes), shaped
        for :mod:`repro.perf`/:mod:`repro.metrics` gauge reporting."""
        return {"interned": len(self._table),
                "intern_hits": self.hits,
                "intern_misses": self.misses}


def value_repr(value: Any) -> str:
    """Human-readable rendering of an NV value."""
    if value is None:
        return "None"
    if isinstance(value, VSome):
        return f"Some {value_repr(value.value)}"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, tuple):
        return "(" + ", ".join(value_repr(v) for v in value) + ")"
    if isinstance(value, VRecord):
        inner = "; ".join(f"{label}={value_repr(v)}" for label, v in value.fields)
        return "{" + inner + "}"
    return repr(value)
