"""MTBDD-backed total maps: the NV ``dict`` runtime (paper §3.1, §5.1).

An :class:`NVMap` is a total function from a finitary key type to NV values,
represented as an MTBDD whose decision variables are the key's bits.  All maps
analysed together share one :class:`MapContext` (one BDD manager), so equal
map contents are *pointer-equal* — the constant-time equality test that the
simulator's convergence check relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..bdd import make_manager
from ..lang import types as T
from ..lang.errors import NvEncodingError
from .encoding import Encoder
from .values import VRecord, VSome


class MapContext:
    """Shared state for all maps of one analysis run: the BDD manager, the
    key encoder for the network under analysis, and per-type caches.

    The manager engine is chosen by ``NV_BDD_ENGINE`` (see
    :func:`repro.bdd.make_manager`); both engines expose the same API."""

    def __init__(self, num_nodes: int = 0,
                 edges: tuple[tuple[int, int], ...] = ()) -> None:
        self.manager = make_manager()
        self.encoder = Encoder(num_nodes, edges)
        self._domain_cache: dict[T.Type, int] = {}
        # Frozen-snapshot cache (see freeze_value): pins a bytes blob and
        # leaf tuple per frozen (root, key type), so it is dropped whenever
        # the manager's caches are — long-lived analyses freezing many
        # distinct roots must not accumulate snapshots forever.
        self._frozen_cache: dict[tuple[int, T.Type], "FrozenMap"] = {}
        self.manager.register_clear_hook(self._frozen_cache.clear)

    def domain(self, key_ty: T.Type) -> int:
        """Cached validity BDD for a key type."""
        cached = self._domain_cache.get(key_ty)
        if cached is None:
            cached = self.encoder.domain(key_ty, self.manager)
            self._domain_cache[key_ty] = cached
        return cached


class NVMap:
    """A total map ``dict[key_ty, _]`` backed by an MTBDD."""

    __slots__ = ("ctx", "key_ty", "root")

    def __init__(self, ctx: MapContext, key_ty: T.Type, root: int) -> None:
        self.ctx = ctx
        self.key_ty = key_ty
        self.root = root

    # ------------------------------------------------------------------
    # fig 7 operations
    # ------------------------------------------------------------------

    @staticmethod
    def create(ctx: MapContext, key_ty: T.Type, default: Any) -> "NVMap":
        """``create : β → dict[α, β]`` — the constant map."""
        if not key_ty.is_finitary():
            raise NvEncodingError(f"map key type {key_ty} is not finitary")
        return NVMap(ctx, key_ty, ctx.manager.leaf(default))

    def get(self, key: Any) -> Any:
        """``m[k]`` for a concrete key."""
        bits = self.ctx.encoder.encode(self.key_ty, key)
        return self.ctx.manager.get_path(self.root, dict(enumerate(bits)))

    def set(self, key: Any, value: Any) -> "NVMap":
        """``m[k := v]`` for a concrete key."""
        bits = self.ctx.encoder.encode(self.key_ty, key)
        leaf = self.ctx.manager.leaf(value)
        root = self.ctx.manager.set_path(
            self.root, list(enumerate(bits)), leaf)
        return NVMap(self.ctx, self.key_ty, root)

    def map(self, fn: Callable[[Any], Any],
            memo: dict[int, int] | None = None) -> "NVMap":
        """``map f m`` — applied once per distinct leaf."""
        return NVMap(self.ctx, self.key_ty,
                     self.ctx.manager.apply1(fn, self.root, memo))

    def combine(self, fn: Callable[[Any, Any], Any], other: "NVMap",
                memo: dict[tuple[int, int], int] | None = None) -> "NVMap":
        """``combine f m1 m2`` — pointwise merge."""
        self._check_same(other)
        return NVMap(self.ctx, self.key_ty,
                     self.ctx.manager.apply2(fn, self.root, other.root, memo))

    def map_ite(self, pred_bdd: int, fn_true: Callable[[Any], Any],
                fn_false: Callable[[Any], Any],
                memo: dict[int, int] | None = None,
                memo_true: dict[int, int] | None = None,
                memo_false: dict[int, int] | None = None) -> "NVMap":
        """``mapIte p f g m`` with the key predicate already built as a BDD.

        The three optional memos (main, true-branch, false-branch) may be
        shared across calls with the same function pair — see
        :meth:`repro.bdd.manager.BddManager.map_ite`."""
        return NVMap(self.ctx, self.key_ty,
                     self.ctx.manager.map_ite(pred_bdd, fn_true, fn_false,
                                              self.root, memo, memo_true,
                                              memo_false))

    # ------------------------------------------------------------------
    # Analysis helpers (not NV surface operations)
    # ------------------------------------------------------------------

    def key_width(self) -> int:
        return self.ctx.encoder.width(self.key_ty)

    def distinct_values(self) -> list[Any]:
        """The map's distinct range values — one per MTBDD leaf."""
        return self.ctx.manager.leaves(self.root)

    def groups(self) -> dict[Any, int]:
        """Each distinct value with the number of (valid) keys mapping to it.

        This is how the fault-tolerance analysis reports failure-equivalence
        classes: one MTBDD leaf per behaviour class.
        """
        return self.ctx.manager.leaf_groups(
            self.root, self.key_width(), self.ctx.domain(self.key_ty))

    def to_dict(self) -> dict[Any, Any]:
        """Materialise the map over all valid keys (small key spaces only)."""
        out: dict[Any, Any] = {}
        for key in self.ctx.encoder.enumerate_values(self.key_ty):
            out[_freeze(key)] = self.get(key)
        return out

    def node_count(self) -> int:
        return self.ctx.manager.node_count(self.root)

    def _check_same(self, other: "NVMap") -> None:
        if self.ctx is not other.ctx:
            raise NvEncodingError("cannot combine maps from different contexts")
        if self.key_ty != other.key_ty:
            raise NvEncodingError(
                f"cannot combine maps with key types {self.key_ty} and {other.key_ty}")

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, NVMap) and self.ctx is other.ctx
                and self.key_ty == other.key_ty and self.root == other.root)

    def __hash__(self) -> int:
        return hash((id(self.ctx), self.root))

    def __repr__(self) -> str:
        return f"<NVMap key={self.key_ty} nodes={self.node_count()}>"


def combine_many(items: list) -> list["NVMap"]:
    """Batched :meth:`NVMap.combine` over one shared manager.

    ``items`` holds ``(fn, m1, m2, memo)`` tuples; all maps must share one
    :class:`MapContext`.  Items sharing a ``memo`` dict must share ``fn``
    (the memo is the batch-group identity — see
    ``ArenaBddManager.apply2_many``).  On engines with a vectorised kernel
    the whole batch fuses into shared frontier passes; otherwise this is a
    plain loop over :meth:`NVMap.combine`."""
    if not items:
        return []
    first = items[0][1]
    ctx = first.ctx
    for fn, m1, m2, _memo in items:
        m1._check_same(m2)
        if m1.ctx is not ctx:
            raise NvEncodingError("cannot batch maps from different contexts")
    roots = ctx.manager.apply2_many(
        [(fn, m1.root, m2.root, memo) for fn, m1, m2, memo in items])
    return [NVMap(ctx, m1.key_ty, root)
            for (_fn, m1, _m2, _memo), root in zip(items, roots)]


def map_ite_many(items: list) -> list["NVMap"]:
    """Batched :meth:`NVMap.map_ite`: ``items`` holds ``(pred_bdd, fn_true,
    fn_false, m, memo, memo_true, memo_false)`` tuples over one shared
    context.  Items sharing a main ``memo`` must share the function pair."""
    if not items:
        return []
    ctx = items[0][3].ctx
    for item in items:
        if item[3].ctx is not ctx:
            raise NvEncodingError("cannot batch maps from different contexts")
    roots = ctx.manager.map_ite_many(
        [(pred, ft, ff, m.root, memo, mt, mf)
         for pred, ft, ff, m, memo, mt, mf in items])
    return [NVMap(ctx, item[3].key_ty, root)
            for item, root in zip(items, roots)]


def _freeze(key: Any) -> Any:
    return key


# ----------------------------------------------------------------------
# Picklable map snapshots (for cross-process result transport)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FrozenMap:
    """A picklable, structurally comparable snapshot of an :class:`NVMap`.

    ``nodes`` is the map's canonical MTBDD flattened to one little-endian
    ``int32`` blob of ``(var, lo, hi)`` triples in DFS preorder (lo before
    hi, root first; leaves store ``-1`` in var and an index into ``leaves``)
    — the engine-independent format produced by both managers' ``snapshot``.
    Two maps over the same network are equal iff their blobs and leaf tuples
    are (MTBDDs are canonical for a fixed variable order), and the blob
    pickles as a single bytes object instead of a nested-tuple graph.  Shard
    workers use this to ship map-valued routes back to the parent: the live
    map's hash-consed manager never crosses the process boundary
    (see :mod:`repro.parallel`).
    """

    key_ty: T.Type
    nodes: bytes
    leaves: tuple[Any, ...]

    def __repr__(self) -> str:
        return (f"<FrozenMap key={self.key_ty} nodes={len(self.nodes) // 12} "
                f"leaves={len(self.leaves)}>")


def freeze_value(value: Any) -> Any:
    """Recursively replace every :class:`NVMap` inside an NV value with a
    :class:`FrozenMap`.  Non-map values come back equal to the input, so
    freezing is safe to apply to any route before pickling it."""
    if isinstance(value, NVMap):
        # One FrozenMap *object* per live (root, key type): converged
        # solutions repeat the same hash-consed roots across many nodes
        # (and the same small nested maps across many leaves), and pickle
        # shares repeated objects by identity — each distinct diagram is
        # serialised once, every other occurrence becomes a memo backref.
        cache = value.ctx._frozen_cache
        key = (value.root, value.key_ty)
        frozen_map = cache.get(key)
        if frozen_map is None:
            nodes, leaves = value.ctx.manager.snapshot(value.root)
            frozen_map = FrozenMap(value.key_ty, nodes,
                                   tuple(freeze_value(v) for v in leaves))
            cache[key] = frozen_map
        return frozen_map
    if isinstance(value, VSome):
        frozen = freeze_value(value.value)
        return value if frozen is value.value else VSome(frozen)
    if isinstance(value, VRecord):
        fields = tuple((n, freeze_value(v)) for n, v in value.fields)
        if all(new is old for (_, new), (_, old) in zip(fields, value.fields)):
            return value
        return VRecord(fields)
    if isinstance(value, tuple):
        frozen_elts = tuple(freeze_value(v) for v in value)
        if all(new is old for new, old in zip(frozen_elts, value)):
            return value
        return frozen_elts
    return value
