"""The perf observatory: canonical run records and noise-aware diffing.

Every serious performance question about this codebase is a question about
*two runs*: before/after a kernel change, arena vs object engine, PR N vs
PR N+1.  :mod:`repro.perf`, :mod:`repro.metrics` and :mod:`repro.obs`
already capture one run exhaustively; this module makes runs **durable and
comparable**:

* A :class:`RunRecord` is the canonical schema — an environment
  fingerprint (git sha, BDD engine, numpy, jobs, Python version), wall
  times as **lists of repeats** (so the differ can take the min), the flat
  perf counters, the last sampled gauges, histogram digests, and a pointer
  to the obs trace JSONL when one was streamed.
* A :class:`RunStore` persists records one JSON file per run under
  ``.nv-runs/`` (override with ``NV_RUNS_DIR``), written by every
  benchmark session (``NV_RUN_RECORD=1``), every ``--record``-flagged CLI
  run, and ``benchmarks/check_regression.py``.
* :func:`diff_records` compares two records with per-metric-class noise
  tolerances: timings use min-of-N selection (the minimum is the least
  noisy location statistic for wall time) with a relative *and* absolute
  tolerance; counters are deterministic, so they get the same tight
  relative tolerance plus tiny absolute slack as the ``budgets.json``
  gate; gauges are structural sizes and get a looser band.

``repro runs list|show|diff`` is the CLI surface;
``benchmarks/check_regression.py`` is the CI gate;
:func:`repro.report.generate_diff` renders a side-by-side HTML report.

The schema is documented in EXPERIMENTS.md ("RunRecord schema").
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from . import metrics, perf

#: Schema tag written into every record; bump on incompatible change.
SCHEMA = "nv-runrecord/v1"

#: Default store directory (relative to the working directory, like
#: ``.git``); override with ``NV_RUNS_DIR``.
DEFAULT_STORE_DIR = ".nv-runs"


# ----------------------------------------------------------------------
# Environment fingerprint
# ----------------------------------------------------------------------

def _git_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            timeout=5, cwd=Path(__file__).resolve().parents[2])
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def env_fingerprint() -> dict[str, Any]:
    """The run environment a comparison must control for.  Diffs surface
    fingerprint mismatches so an apples-to-oranges comparison (different
    engine, different interpreter) is labelled as such."""
    from .bdd import engine_hint, engine_name

    try:
        import numpy
        numpy_version: str | None = numpy.__version__
    except ImportError:
        numpy_version = None
    if os.environ.get("NV_BDD_NUMPY", "").strip() == "0":
        numpy_version = None  # disabled counts as absent: fallback paths run
    return {
        "git_sha": _git_sha(),
        "engine": engine_name(),
        "engine_hint": engine_hint(),
        "numpy": numpy_version,
        "jobs": os.environ.get("NV_JOBS") or None,
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "telemetry": os.environ.get("NV_TELEMETRY") or None,
    }


# ----------------------------------------------------------------------
# RunRecord
# ----------------------------------------------------------------------

def _slug(text: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_.-]+", "-", text.strip()).strip("-")
    return out[:48] or "run"


def new_run_id(label: str, created: float | None = None) -> str:
    """A sortable, human-scannable id: UTC timestamp + label slug + nonce."""
    t = time.gmtime(created if created is not None else time.time())
    stamp = time.strftime("%Y%m%dT%H%M%S", t)
    return f"{stamp}-{_slug(label)}-{uuid.uuid4().hex[:6]}"


@dataclass
class RunRecord:
    """One recorded run (see module docstring for field semantics)."""

    run_id: str
    label: str
    created: float                      # unix epoch seconds
    env: dict[str, Any] = field(default_factory=dict)
    #: metric name -> list of repeat wall times in seconds (min-of-N diffing)
    timings: dict[str, list[float]] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    #: metric name -> Histogram.to_dict() digest
    histograms: dict[str, dict[str, Any]] = field(default_factory=dict)
    trace_path: str | None = None
    meta: dict[str, Any] = field(default_factory=dict)
    schema: str = SCHEMA

    def best_timing(self, name: str) -> float | None:
        runs = self.timings.get(name)
        return min(runs) if runs else None

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "label": self.label,
            "created": self.created,
            "env": self.env,
            "timings": self.timings,
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": self.histograms,
            "trace_path": self.trace_path,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        timings = {name: [float(v) for v in runs]
                   for name, runs in (data.get("timings") or {}).items()}
        counters = {name: int(v)
                    for name, v in (data.get("counters") or {}).items()}
        gauges = {name: float(v)
                  for name, v in (data.get("gauges") or {}).items()}
        return cls(
            run_id=str(data.get("run_id") or new_run_id("unnamed")),
            label=str(data.get("label") or ""),
            created=float(data.get("created") or 0.0),
            env=dict(data.get("env") or {}),
            timings=timings,
            counters=counters,
            gauges=gauges,
            histograms=dict(data.get("histograms") or {}),
            trace_path=data.get("trace_path"),
            meta=dict(data.get("meta") or {}),
            schema=str(data.get("schema") or SCHEMA),
        )


def capture(label: str,
            timings: Mapping[str, Iterable[float]] | None = None,
            trace_path: str | Path | None = None,
            meta: Mapping[str, Any] | None = None) -> RunRecord:
    """Build a :class:`RunRecord` from the *live* registries.

    Integer :mod:`repro.perf` entries become counters; float entries
    (the ``*_seconds`` timers) become single-repeat timings, merged with
    any explicit ``timings`` the caller measured.  When the
    :mod:`repro.metrics` registry is enabled, the final sampled gauges
    and histogram digests ride along.
    """
    created = time.time()
    out_timings: dict[str, list[float]] = {
        name: [float(v) for v in runs] for name, runs in (timings or {}).items()}
    counters: dict[str, int] = {}
    for name, value in perf.snapshot().items():
        if isinstance(value, float):
            out_timings.setdefault(name, []).append(value)
        else:
            counters[name] = int(value)
    gauges: dict[str, float] = {}
    histograms: dict[str, dict[str, Any]] = {}
    if metrics.is_enabled():
        sampled_gauges, sampled_hists = metrics.sample()
        gauges = {name: float(v) for name, v in sampled_gauges.items()}
        histograms = {name: h.to_dict() for name, h in sampled_hists.items()}
    return RunRecord(
        run_id=new_run_id(label, created),
        label=label,
        created=created,
        env=env_fingerprint(),
        timings=out_timings,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        trace_path=str(trace_path) if trace_path else None,
        meta=dict(meta or {}),
    )


# ----------------------------------------------------------------------
# RunStore
# ----------------------------------------------------------------------

class RunStore:
    """One-JSON-file-per-run store under ``.nv-runs/`` (or ``NV_RUNS_DIR``,
    or an explicit ``root``).  Filenames are ``<run_id>.json``; run ids are
    timestamp-prefixed, so lexicographic file order is creation order."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root or os.environ.get("NV_RUNS_DIR")
                         or DEFAULT_STORE_DIR)

    def save(self, record: RunRecord) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.root / f"{record.run_id}.json"
        path.write_text(json.dumps(record.to_dict(), indent=2,
                                   sort_keys=True, default=repr) + "\n",
                        encoding="utf-8")
        return path

    def load(self, path: str | Path) -> RunRecord:
        return RunRecord.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8")))

    def list(self) -> list[RunRecord]:
        """Every record in the store, oldest first."""
        if not self.root.is_dir():
            return []
        records = []
        for path in sorted(self.root.glob("*.json")):
            try:
                records.append(self.load(path))
            except (OSError, ValueError):
                continue  # half-written or foreign file: skip, don't die
        records.sort(key=lambda r: (r.created, r.run_id))
        return records

    def resolve(self, ref: str) -> RunRecord:
        """Resolve ``ref`` to a record: exact run id, unique run-id prefix,
        or label (the *latest* record with that label wins — 'diff this
        run against the last fig14-smoke')."""
        exact = self.root / f"{ref}.json"
        if exact.is_file():
            return self.load(exact)
        records = self.list()
        prefixed = [r for r in records if r.run_id.startswith(ref)]
        if len(prefixed) == 1:
            return prefixed[0]
        if len(prefixed) > 1:
            raise KeyError(
                f"ambiguous run ref {ref!r}: matches "
                + ", ".join(r.run_id for r in prefixed[:5]))
        labelled = [r for r in records if r.label == ref]
        if labelled:
            return labelled[-1]
        raise KeyError(f"no run matching {ref!r} in {self.root} "
                       f"({len(records)} records)")


# ----------------------------------------------------------------------
# Noise-aware diffing
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Tolerance:
    """``|b - a| <= max(abs, rel * |a|)`` is considered noise."""

    rel: float
    abs: float

    def within(self, a: float, b: float) -> bool:
        return abs(b - a) <= max(self.abs, self.rel * abs(a))


#: Per-metric-class noise tolerances.  Timings: wall clocks on shared CI
#: runners jitter ~5-10% even after min-of-N, plus a floor for sub-100ms
#: measurements.  Counters: deterministic — same tolerance semantics as
#: ``benchmarks/budgets.json`` (10% relative, ±2 absolute slack).  Gauges:
#: structural sizes (table capacities, RSS) legitimately wobble more.
DEFAULT_TOLERANCES: dict[str, Tolerance] = {
    "timing": Tolerance(rel=0.10, abs=0.02),
    "counter": Tolerance(rel=0.10, abs=2.0),
    "gauge": Tolerance(rel=0.25, abs=16.0),
}


@dataclass(frozen=True)
class Delta:
    """One compared metric.  ``status``: ``ok`` (within tolerance),
    ``regressed`` / ``improved`` (beyond it; for timings and work counters
    *more* is worse), ``new`` / ``gone`` (present on one side only)."""

    kind: str           # timing | counter | gauge
    name: str
    a: float | None     # baseline value (min-of-N for timings)
    b: float | None     # candidate value
    status: str

    @property
    def rel(self) -> float | None:
        """Relative change vs the baseline (None when undefined)."""
        if self.a is None or self.b is None or self.a == 0:
            return None
        return (self.b - self.a) / abs(self.a)


def _classify(kind: str, a: float | None, b: float | None,
              tol: Tolerance) -> str:
    if a is None:
        return "new"
    if b is None:
        return "gone"
    if tol.within(a, b):
        return "ok"
    return "regressed" if b > a else "improved"


def diff_records(a: RunRecord, b: RunRecord,
                 tolerances: Mapping[str, Tolerance] | None = None
                 ) -> list[Delta]:
    """Compare two records metric-by-metric; returns every compared metric
    (callers filter on ``status``).  Timings are reduced min-of-N first."""
    tols = dict(DEFAULT_TOLERANCES)
    if tolerances:
        tols.update(tolerances)
    deltas: list[Delta] = []
    for name in sorted(set(a.timings) | set(b.timings)):
        va, vb = a.best_timing(name), b.best_timing(name)
        deltas.append(Delta("timing", name, va, vb,
                            _classify("timing", va, vb, tols["timing"])))
    for kind, side_a, side_b in (("counter", a.counters, b.counters),
                                 ("gauge", a.gauges, b.gauges)):
        for name in sorted(set(side_a) | set(side_b)):
            va = side_a.get(name)
            vb = side_b.get(name)
            deltas.append(Delta(kind, name,
                                None if va is None else float(va),
                                None if vb is None else float(vb),
                                _classify(kind, va, vb, tols[kind])))
    return deltas


def regressions(deltas: Iterable[Delta],
                kinds: Iterable[str] = ("counter",)) -> list[Delta]:
    """The deltas a gate should fail on: regressed/new/gone metrics of the
    given kinds (default: counters only — timings stay informational on
    noisy CI runners unless explicitly gated)."""
    want = set(kinds)
    return [d for d in deltas
            if d.kind in want and d.status in ("regressed", "new", "gone")]


def _fmt(value: float | None, kind: str) -> str:
    if value is None:
        return "-"
    if kind == "timing":
        return f"{value:.4f}s"
    if float(value).is_integer():
        return f"{int(value):,d}"
    return f"{value:,.4g}"


def diff_table(deltas: Iterable[Delta], only_interesting: bool = False) -> str:
    """Render deltas as an aligned text table (``repro runs diff``)."""
    rows = [d for d in deltas
            if not (only_interesting and d.status == "ok")]
    if not rows:
        return "(no metrics differ beyond tolerance)"
    name_w = max(len(d.name) for d in rows)
    name_w = max(name_w, len("metric"))
    lines = [f"{'metric':<{name_w}} {'kind':<8} {'A':>14} {'B':>14} "
             f"{'delta':>9}  status"]
    for d in rows:
        rel = d.rel
        rel_s = f"{rel:+.1%}" if rel is not None else "-"
        lines.append(f"{d.name:<{name_w}} {d.kind:<8} "
                     f"{_fmt(d.a, d.kind):>14} {_fmt(d.b, d.kind):>14} "
                     f"{rel_s:>9}  {d.status}")
    return "\n".join(lines)


def describe(record: RunRecord) -> str:
    """One-record human summary (``repro runs show``)."""
    env = record.env
    when = time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime(record.created))
    lines = [
        f"run    {record.run_id}",
        f"label  {record.label}",
        f"when   {when}",
        "env    " + ", ".join(
            f"{k}={env.get(k)}" for k in
            ("engine", "engine_hint", "git_sha", "python", "numpy", "jobs")
            if env.get(k) is not None),
    ]
    if record.trace_path:
        lines.append(f"trace  {record.trace_path}")
    if record.timings:
        lines.append("timings (best of N):")
        for name in sorted(record.timings):
            runs = record.timings[name]
            lines.append(f"  {name:<40} {min(runs):.4f}s  (n={len(runs)})")
    if record.counters:
        lines.append(f"counters ({len(record.counters)}):")
        for name in sorted(record.counters):
            lines.append(f"  {name:<40} {record.counters[name]:>14,d}")
    if record.gauges:
        # Listed by name, not just counted: partitioned-verify runs carry
        # their fragment-count / interface-size gauges (partition.*) here.
        lines.append(f"gauges ({len(record.gauges)}):")
        for name in sorted(record.gauges):
            value = record.gauges[name]
            shown = f"{value:,.4g}" if isinstance(value, float) else f"{value:,}"
            lines.append(f"  {name:<40} {shown:>14}")
    if record.histograms:
        lines.append("histograms: " + ", ".join(sorted(record.histograms)))
    return "\n".join(lines)
