"""Record elimination and tuple flattening (paper §5.2).

Two passes over typed, option-free ASTs (run
:mod:`repro.transform.unbox_options` first):

* :func:`records_to_tuples` — records become positional tuples (field order
  is fixed by the record type, so this is a layout change only);
* :func:`flatten_program` — nested tuples become flat tuples: the type
  ``((a, b), c)`` becomes ``(a, b, c)``; constructors splice their components'
  slots, projections become slot slices, and tuple-typed variables bound
  inside nested patterns are rebuilt from their slots in the branch body
  ("expanding variables of tuple type", as the paper puts it).

After both passes (plus unboxing), every value is a flat tuple of scalars —
the shape §5.2's constraint translation encodes as independent variables.
"""

from __future__ import annotations

import itertools

from ..lang import ast as A
from ..lang import types as T
from ..lang.errors import NvTransformError

# ---------------------------------------------------------------------------
# Records -> tuples
# ---------------------------------------------------------------------------


def record_type_to_tuple(ty: T.Type) -> T.Type:
    if isinstance(ty, T.TRecord):
        return T.TTuple(tuple(record_type_to_tuple(t) for _, t in ty.fields))
    if isinstance(ty, T.TOption):
        return T.TOption(record_type_to_tuple(ty.elt))
    if isinstance(ty, T.TTuple):
        return T.TTuple(tuple(record_type_to_tuple(t) for t in ty.elts))
    if isinstance(ty, T.TDict):
        return T.TDict(record_type_to_tuple(ty.key), record_type_to_tuple(ty.value))
    if isinstance(ty, T.TArrow):
        return T.TArrow(record_type_to_tuple(ty.arg), record_type_to_tuple(ty.result))
    return ty


def _record_index(ty: T.Type | None, label: str) -> tuple[int, int]:
    if not isinstance(ty, T.TRecord):
        raise NvTransformError(
            f"record elimination requires type annotations; got {ty}")
    return ty.field_index(label), len(ty.fields)


def records_to_tuples(e: A.Expr) -> A.Expr:
    ty = record_type_to_tuple(e.ty) if e.ty is not None else None
    if isinstance(e, A.ERecord):
        return A.ETuple(tuple(records_to_tuples(x) for _, x in e.fields),
                        ty=ty, span=e.span)
    if isinstance(e, A.EProj):
        base_ty = e.sub.ty
        index, arity = _record_index(base_ty, e.label)
        return A.ETupleGet(records_to_tuples(e.sub), index, arity,
                           ty=ty, span=e.span)
    if isinstance(e, A.ERecordWith):
        base_ty = e.sub.ty if hasattr(e, "sub") else e.base.ty
        if not isinstance(base_ty, T.TRecord):
            raise NvTransformError("record update requires type annotations")
        labels = base_ty.labels()
        updates = {n: records_to_tuples(x) for n, x in e.updates}
        base = records_to_tuples(e.base)
        # Bind the base once, then rebuild the tuple positionally.
        tmp = _fresh("rw")
        elts = []
        for i, label in enumerate(labels):
            if label in updates:
                elts.append(updates[label])
            else:
                elts.append(A.ETupleGet(A.EVar(tmp, ty=record_type_to_tuple(base_ty)),
                                        i, len(labels),
                                        ty=record_type_to_tuple(base_ty.fields[i][1])))
        return A.ELet(tmp, base, A.ETuple(tuple(elts), ty=ty), ty=ty, span=e.span)
    if isinstance(e, A.EMatch):
        return A.EMatch(records_to_tuples(e.scrutinee),
                        tuple((_record_pattern(p, e.scrutinee.ty),
                               records_to_tuples(b)) for p, b in e.branches),
                        ty=ty, span=e.span)
    if isinstance(e, A.ELetPat):
        return A.ELetPat(_record_pattern(e.pat, e.bound.ty),
                         records_to_tuples(e.bound), records_to_tuples(e.body),
                         ty=ty, span=e.span)
    out = A.map_children(e, records_to_tuples)
    out.ty = ty
    if isinstance(out, A.EFun) and out.param_ty is not None:
        out.param_ty = record_type_to_tuple(out.param_ty)
    if isinstance(out, A.ELet) and out.annot is not None:
        out.annot = record_type_to_tuple(out.annot)
    return out


def _record_pattern(p: A.Pattern, scrut_ty: T.Type | None) -> A.Pattern:
    if isinstance(p, A.PRecord):
        if not isinstance(scrut_ty, T.TRecord):
            raise NvTransformError("record pattern requires type annotations")
        by_label = dict(p.fields)
        subs = []
        for label, field_ty in scrut_ty.fields:
            sub = by_label.get(label, A.PWild())
            subs.append(_record_pattern(sub, field_ty))
        return A.PTuple(tuple(subs))
    if isinstance(p, A.PTuple):
        elts = scrut_ty.elts if isinstance(scrut_ty, T.TTuple) else \
            [None] * len(p.elts)
        return A.PTuple(tuple(_record_pattern(s, t)
                              for s, t in zip(p.elts, elts)))
    if isinstance(p, A.PSome):
        inner = scrut_ty.elt if isinstance(scrut_ty, T.TOption) else None
        return A.PSome(_record_pattern(p.sub, inner))
    return p


_counter = itertools.count()


def _fresh(base: str) -> str:
    return f"__{base}{next(_counter)}"


def records_to_tuples_program(program: A.Program) -> A.Program:
    decls: list[A.Decl] = []
    for d in program.decls:
        if isinstance(d, A.DLet):
            annot = record_type_to_tuple(d.annot) if d.annot is not None else None
            decls.append(A.DLet(d.name, records_to_tuples(d.expr), annot=annot))
        elif isinstance(d, A.DRequire):
            decls.append(A.DRequire(records_to_tuples(d.expr)))
        elif isinstance(d, A.DSymbolic):
            decls.append(A.DSymbolic(d.name, record_type_to_tuple(d.ty)))
        elif isinstance(d, A.DType):
            decls.append(A.DType(d.name, record_type_to_tuple(d.ty)))
        else:
            decls.append(d)
    return A.Program(decls)


# ---------------------------------------------------------------------------
# Tuple flattening
# ---------------------------------------------------------------------------


def flatten_type(ty: T.Type) -> T.Type:
    """Flatten nested tuple types; other constructors flatten inside."""
    if isinstance(ty, T.TTuple):
        flat: list[T.Type] = []
        for t in ty.elts:
            ft = flatten_type(t)
            if isinstance(ft, T.TTuple):
                flat.extend(ft.elts)
            else:
                flat.append(ft)
        return T.TTuple(tuple(flat))
    if isinstance(ty, T.TOption):
        return T.TOption(flatten_type(ty.elt))
    if isinstance(ty, T.TDict):
        return T.TDict(flatten_type(ty.key), flatten_type(ty.value))
    if isinstance(ty, T.TArrow):
        return T.TArrow(flatten_type(ty.arg), flatten_type(ty.result))
    return ty


def _slot_width(ty: T.Type) -> int:
    """Number of flat slots a component of this (unflattened) type expands to."""
    if isinstance(ty, T.TTuple):
        return sum(_slot_width(t) for t in ty.elts)
    return 1


def _slot_offset(elts: tuple[T.Type, ...], index: int) -> int:
    return sum(_slot_width(t) for t in elts[:index])


def flatten_expr(e: A.Expr) -> A.Expr:
    ty = flatten_type(e.ty) if e.ty is not None else None

    if isinstance(e, A.ETuple):
        parts: list[A.Expr] = []
        for x in e.elts:
            fx = flatten_expr(x)
            if isinstance(fx.ty, T.TTuple) if fx.ty is not None else \
                    isinstance(x.ty, T.TTuple):
                parts.extend(_splice(fx))
            else:
                parts.append(fx)
        return A.ETuple(tuple(parts), ty=ty, span=e.span)

    if isinstance(e, A.ETupleGet):
        sub_ty = e.sub.ty
        if not isinstance(sub_ty, T.TTuple):
            raise NvTransformError("tuple flattening requires type annotations")
        flat_sub = flatten_expr(e.sub)
        offset = _slot_offset(sub_ty.elts, e.index)
        width = _slot_width(sub_ty.elts[e.index])
        total = sum(_slot_width(t) for t in sub_ty.elts)
        if width == 1:
            return A.ETupleGet(flat_sub, offset, total, ty=ty, span=e.span)
        comp_ty = flatten_type(sub_ty.elts[e.index])
        assert isinstance(comp_ty, T.TTuple)
        tmp = _fresh("fl")
        gets = tuple(
            A.ETupleGet(A.EVar(tmp, ty=flatten_type(sub_ty)), offset + i, total,
                        ty=comp_ty.elts[i])
            for i in range(width))
        return A.ELet(tmp, flat_sub, A.ETuple(gets, ty=ty), ty=ty, span=e.span)

    if isinstance(e, A.EMatch):
        branches = []
        for p, b in e.branches:
            fp, rebinds = _flatten_pattern(p, e.scrutinee.ty)
            body = flatten_expr(b)
            for name, expr in reversed(rebinds):
                body = A.ELet(name, expr, body, ty=body.ty)
            branches.append((fp, body))
        return A.EMatch(flatten_expr(e.scrutinee), tuple(branches),
                        ty=ty, span=e.span)

    if isinstance(e, A.ELetPat):
        fp, rebinds = _flatten_pattern(e.pat, e.bound.ty)
        body = flatten_expr(e.body)
        for name, expr in reversed(rebinds):
            body = A.ELet(name, expr, body, ty=body.ty)
        return A.ELetPat(fp, flatten_expr(e.bound), body, ty=ty, span=e.span)

    out = A.map_children(e, flatten_expr)
    out.ty = ty
    if isinstance(out, A.EFun) and out.param_ty is not None:
        out.param_ty = flatten_type(out.param_ty)
    if isinstance(out, A.ELet) and out.annot is not None:
        out.annot = flatten_type(out.annot)
    return out


def _splice(e: A.Expr) -> list[A.Expr]:
    """The slot expressions of an (already flattened) tuple-typed expression."""
    if isinstance(e, A.ETuple):
        return list(e.elts)
    assert isinstance(e.ty, T.TTuple)
    n = len(e.ty.elts)
    if isinstance(e, A.EVar):
        return [A.ETupleGet(e, i, n, ty=e.ty.elts[i]) for i in range(n)]
    # General expression: the caller's let-binding discipline would be
    # needed to avoid duplication; bind here.
    tmp = _fresh("sp")
    var = A.EVar(tmp, ty=e.ty)
    gets = [A.ETupleGet(var, i, n, ty=e.ty.elts[i]) for i in range(n)]
    # Represent the binding by returning a single-element marker is not
    # possible; instead wrap each get in the same let (duplicated bound
    # expression is avoided by the marker class below).
    return [_LetSplice(tmp, e, g) for g in gets]


class _LetSplice(A.Expr):
    """Internal marker: a slot that needs its source bound once.  Collapsed
    by :func:`_resolve_splices` right after construction."""

    __slots__ = ("name", "bound", "get", "ty", "span")

    def __init__(self, name: str, bound: A.Expr, get: A.Expr) -> None:
        self.name = name
        self.bound = bound
        self.get = get
        self.ty = get.ty
        self.span = None

    def children(self):
        yield self.bound
        yield self.get


def _resolve_splices(e: A.Expr) -> A.Expr:
    """Hoist _LetSplice markers inside a tuple into one enclosing let."""
    if isinstance(e, A.ETuple):
        bindings: dict[str, A.Expr] = {}
        elts = []
        for x in e.elts:
            if isinstance(x, _LetSplice):
                bindings[x.name] = x.bound
                elts.append(x.get)
            else:
                elts.append(_resolve_splices(x))
        out: A.Expr = A.ETuple(tuple(elts), ty=e.ty, span=e.span)
        for name, bound in bindings.items():
            out = A.ELet(name, _resolve_splices(bound), out, ty=e.ty)
        return out
    return A.map_children(e, _resolve_splices)


def _flatten_pattern(p: A.Pattern, scrut_ty: T.Type | None
                     ) -> tuple[A.Pattern, list[tuple[str, A.Expr]]]:
    """Flatten a pattern; returns rebinding lets for variables that matched
    tuple-typed components (their slots are bound to fresh names and the
    original variable is reconstructed in the body)."""
    if isinstance(p, A.PTuple) and isinstance(scrut_ty, T.TTuple):
        flat_subs: list[A.Pattern] = []
        rebinds: list[tuple[str, A.Expr]] = []
        for sub, comp_ty in zip(p.elts, scrut_ty.elts):
            width = _slot_width(comp_ty)
            if width == 1:
                fp, rb = _flatten_pattern(sub, comp_ty)
                flat_subs.append(fp)
                rebinds.extend(rb)
            elif isinstance(sub, A.PTuple):
                fp, rb = _flatten_pattern(sub, comp_ty)
                assert isinstance(fp, A.PTuple)
                flat_subs.extend(fp.elts)
                rebinds.extend(rb)
            elif isinstance(sub, A.PWild):
                flat_subs.extend([A.PWild()] * width)
            elif isinstance(sub, A.PVar):
                flat_comp = flatten_type(comp_ty)
                assert isinstance(flat_comp, T.TTuple)
                names = [_fresh(f"{sub.name}_s") for _ in range(width)]
                flat_subs.extend(A.PVar(n) for n in names)
                rebinds.append((sub.name, A.ETuple(
                    tuple(A.EVar(n, ty=t) for n, t in zip(names, flat_comp.elts)),
                    ty=flat_comp)))
            else:
                raise NvTransformError(
                    f"cannot flatten pattern {sub} at type {comp_ty}")
        return A.PTuple(tuple(flat_subs)), rebinds
    if isinstance(p, A.PSome) and isinstance(scrut_ty, T.TOption):
        fp, rb = _flatten_pattern(p.sub, scrut_ty.elt)
        return A.PSome(fp), rb
    return p, []


def flatten_program(program: A.Program) -> A.Program:
    decls: list[A.Decl] = []
    for d in program.decls:
        if isinstance(d, A.DLet):
            annot = flatten_type(d.annot) if d.annot is not None else None
            decls.append(A.DLet(d.name, _resolve_splices(flatten_expr(d.expr)),
                                annot=annot))
        elif isinstance(d, A.DRequire):
            decls.append(A.DRequire(_resolve_splices(flatten_expr(d.expr))))
        elif isinstance(d, A.DSymbolic):
            decls.append(A.DSymbolic(d.name, flatten_type(d.ty)))
        elif isinstance(d, A.DType):
            decls.append(A.DType(d.name, flatten_type(d.ty)))
        else:
            decls.append(d)
    return A.Program(decls)
