"""The fault-tolerance meta-protocol (paper fig 5, §2.7).

An NV-to-NV transformation: given a network program over attribute type α,
produce a program over ``dict[scenario, α]`` where every map key is one
failure scenario.  The transfer function drops the route in the entry whose
scenario fails the edge being traversed; the merge function combines maps
pointwise.  Simulating the transformed program computes the routes of *all*
scenarios at once, with MTBDD leaf-sharing collapsing equivalent scenarios —
the paper's key insight.

Scenario key types:

* ``k = 1`` link failure → key is ``edge``;
* ``k >= 2`` link failures → key is a k-tuple of edges (a scenario's failed
  set is the set of its components, so tuples with repeats model scenarios
  with fewer failures — every combination of ≤ k failures is covered);
* ``node_failures=True`` adds a failed node: key is ``(node, edge...)``;
  the route is dropped when the traversed edge leaves or enters the failed
  node.

A second entry point, :func:`symbolic_failures_program`, produces the
SMT-oriented variant: one symbolic boolean per physical link with a
``require`` bounding how many may fail — the encoding MineSweeper-style SMT
fault-tolerance checking uses (compared against in fig 13a).
"""

from __future__ import annotations

from ..lang import ast as A
from ..lang import types as T
from ..srp.network import Network


def _var(name: str) -> A.EVar:
    return A.EVar(name)


def _eq(a: A.Expr, b: A.Expr) -> A.Expr:
    return A.EOp("eq", (a, b))


def _or_all(parts: list[A.Expr]) -> A.Expr:
    e = parts[0]
    for p in parts[1:]:
        e = A.EOp("or", (e, p))
    return e


def scenario_key_type(num_link_failures: int, node_failures: bool) -> T.Type:
    parts: list[T.Type] = []
    if node_failures:
        parts.append(T.TNode())
    parts.extend([T.TEdge()] * num_link_failures)
    if len(parts) == 1:
        return parts[0]
    return T.TTuple(tuple(parts))


def _edge_matches(scenario_edge: A.Expr, edge_var: str) -> A.Expr:
    """AST for "the scenario's failed edge is this physical link, in either
    orientation": a failed link kills both directed edges.

    ``let (su, sv) = sc in let (eu, ev) = e in
      (su = eu && sv = ev) || (su = ev && sv = eu)``
    """
    body = A.EOp("or", (
        A.EOp("and", (_eq(_var("__su"), _var("__eu")),
                      _eq(_var("__sv"), _var("__ev")))),
        A.EOp("and", (_eq(_var("__su"), _var("__ev")),
                      _eq(_var("__sv"), _var("__eu")))),
    ))
    inner = A.ELetPat(A.PTuple((A.PVar("__eu"), A.PVar("__ev"))),
                      _var(edge_var), body)
    return A.ELetPat(A.PTuple((A.PVar("__su"), A.PVar("__sv"))),
                     scenario_edge, inner)


def _scenario_fails_edge(scenario: A.Expr, key_ty: T.Type, edge_var: str,
                         num_link_failures: int, node_failures: bool) -> A.Expr:
    """AST for "this scenario fails the edge bound to ``edge_var``"."""
    if isinstance(key_ty, T.TEdge):
        return _edge_matches(scenario, edge_var)
    assert isinstance(key_ty, T.TTuple)
    arity = len(key_ty.elts)
    parts: list[A.Expr] = []
    index = 0
    if node_failures:
        failed_node = A.ETupleGet(scenario, 0, arity)
        # The edge fails if either endpoint is the failed node.
        parts.append(_node_hits_edge(failed_node, edge_var))
        index = 1
    for i in range(index, arity):
        parts.append(_edge_matches(A.ETupleGet(scenario, i, arity), edge_var))
    return _or_all(parts)


def _scenario_in_batch(scenario: A.Expr, key_ty: T.Type,
                       link_batch: tuple[tuple[int, int], ...],
                       node_failures: bool) -> A.Expr:
    """AST for "this scenario belongs to the given link batch".

    Batch membership is decided by the scenario's *first edge component*
    (component 0, or component 1 when a failed node leads the tuple): the
    scenario is in the batch iff that edge is one of the batch's physical
    links, in either orientation.  Partitioning the links therefore
    partitions the scenario space exactly — the property the sharded
    fault driver's per-batch class counting relies on.
    """
    if isinstance(key_ty, T.TEdge):
        comp: A.Expr = scenario
    else:
        assert isinstance(key_ty, T.TTuple)
        index = 1 if node_failures else 0
        comp = A.ETupleGet(scenario, index, len(key_ty.elts))
    parts: list[A.Expr] = []
    for u, v in link_batch:
        parts.append(_eq(comp, A.EEdge(u, v)))
        parts.append(_eq(comp, A.EEdge(v, u)))
    if not parts:
        return A.EBool(False)
    return _or_all(parts)


def _node_hits_edge(failed_node: A.Expr, edge_var: str) -> A.Expr:
    """``let (u, v) = e in n = u || n = v`` as an AST."""
    return A.ELetPat(
        A.PTuple((A.PVar("__fu"), A.PVar("__fv"))),
        _var(edge_var),
        A.EOp("or", (_eq(failed_node, _var("__fu")),
                     _eq(failed_node, _var("__fv")))),
    )


def fault_tolerance_transform(net: Network, num_link_failures: int = 1,
                              node_failures: bool = False,
                              drop_body: A.Expr | None = None,
                              link_batch: tuple[tuple[int, int], ...] | None = None
                              ) -> Network:
    """Apply the fig 5 meta-protocol to a network program.

    The returned network's attribute type is ``dict[scenario, α]``; its
    ``assert`` is dropped (the analysis driver checks the base assertion on
    every map leaf instead, since NV deliberately has no map folds).

    ``drop_body`` is the "dropped route" expression, with the pre-failure
    route bound to ``__v``.  It defaults to ``None``, matching fig 5's
    option-typed attributes; non-option attributes (e.g. the RIB maps of
    config-translated networks) must supply their own — the generalisation
    the paper's fig 5 caption calls out.

    ``link_batch`` restricts the meta-protocol to the scenarios whose first
    failed link is one of the given physical links: the transfer predicate
    becomes ``in_batch(sc) && fails(sc, e)``, so out-of-batch scenarios
    never drop a route and all collapse onto the no-failure leaves.  Routes
    of *in-batch* scenarios are exactly those of the unrestricted
    transform.  This is the decomposition :func:`repro.analysis.fault.
    fault_tolerance_sharded` fans out over worker processes.
    """
    if num_link_failures < 0 or (num_link_failures == 0 and not node_failures):
        raise ValueError("at least one link or node failure is required")
    if drop_body is None:
        if not isinstance(net.attr_ty, T.TOption):
            raise ValueError(
                f"attribute type {net.attr_ty} is not an option; pass drop_body "
                "to define what a dropped route looks like")
        drop_body = A.ENone()
    key_ty = scenario_key_type(num_link_failures, node_failures)
    attr_ty = net.attr_ty
    dict_ty = T.TDict(key_ty, attr_ty)

    decls: list[A.Decl] = []
    for d in net.program.decls:
        if isinstance(d, A.DLet) and d.name in ("init", "trans", "merge", "assert"):
            new_name = {"init": "initBase", "trans": "transBase",
                        "merge": "mergeBase", "assert": "assertBase"}[d.name]
            decls.append(A.DLet(new_name, d.expr, annot=d.annot))
        else:
            decls.append(d)

    # let init u = createDict (initBase u)
    decls.append(A.DLet(
        "init",
        A.EFun("u", A.EOp("mcreate", (A.EApp(_var("initBase"), _var("u")),)),
               param_ty=T.TNode()),
        annot=T.TArrow(T.TNode(), dict_ty),
    ))

    # let trans e x = mapIte (fun sc -> fails sc e) (fun v -> drop) (transBase e) x
    fails = _scenario_fails_edge(
        _var("__sc"), key_ty, "e", num_link_failures, node_failures)
    if link_batch is not None:
        fails = A.EOp("and", (
            _scenario_in_batch(_var("__sc"), key_ty, tuple(link_batch),
                               node_failures),
            fails))
    pred = A.EFun("__sc", fails, param_ty=key_ty)
    drop_fn = A.EFun("__v", drop_body)
    trans_body = A.EOp("mmapite", (
        pred, drop_fn, A.EApp(_var("transBase"), _var("e")), _var("x")))
    decls.append(A.DLet(
        "trans",
        A.EFun("e", A.EFun("x", trans_body), param_ty=T.TEdge()),
        annot=T.TArrow(T.TEdge(), T.TArrow(dict_ty, dict_ty)),
    ))

    # let merge u x y = combine (mergeBase u) x y
    merge_body = A.EOp("mcombine", (
        A.EApp(_var("mergeBase"), _var("u")), _var("x"), _var("y")))
    decls.append(A.DLet(
        "merge",
        A.EFun("u", A.EFun("x", A.EFun("y", merge_body)), param_ty=T.TNode()),
        annot=T.TArrow(T.TNode(), T.TArrow(dict_ty, T.TArrow(dict_ty, dict_ty))),
    ))

    return Network.from_program(A.Program(decls))


def symbolic_failures_program(net: Network, max_failures: int = 1) -> A.Program:
    """The SMT-oriented fault model: a symbolic boolean per physical link,
    ``require`` bounding the number of failed links, and a transfer function
    that drops routes crossing failed links.

    This is the encoding whose scaling fig 13a contrasts with the MTBDD
    meta-protocol: the SMT solver must case-split over failure combinations.
    """
    links = net.links if net.links else tuple(net.edges)
    decls: list[A.Decl] = []
    fail_names = []
    for i, _ in enumerate(links):
        name = f"fail{i}"
        fail_names.append(name)
        decls.append(A.DSymbolic(name, T.TBool()))

    # require (sum of failures) <= max_failures
    count: A.Expr = A.EInt(0)
    for name in fail_names:
        count = A.EOp("add", (count, A.EIf(_var(name), A.EInt(1), A.EInt(0))))
    decls.append(A.DRequire(A.EOp("le", (count, A.EInt(max_failures)))))

    for d in net.program.decls:
        if isinstance(d, A.DLet) and d.name == "trans":
            decls.append(A.DLet("transBase", d.expr, annot=d.annot))
        else:
            decls.append(d)

    # let trans e x = if failed e then None else transBase e x
    # where `failed e` tests both orientations of each physical link.
    failed: A.Expr = A.EBool(False)
    for i, (u, v) in enumerate(links):
        hit = A.EOp("or", (
            _eq(_var("e"), A.EEdge(u, v)),
            _eq(_var("e"), A.EEdge(v, u)),
        ))
        failed = A.EOp("or", (failed, A.EOp("and", (hit, _var(f"fail{i}")))))
    trans_body = A.EIf(failed, A.ENone(), A.EApp(A.EApp(_var("transBase"),
                                                        _var("e")), _var("x")))
    # Replace the trans declaration (it must come after transBase).
    decls = [d for d in decls if not (isinstance(d, A.DLet) and d.name == "trans")]
    decls.append(A.DLet("trans", A.EFun("e", A.EFun("x", trans_body),
                                        param_ty=T.TEdge())))
    return A.Program(decls)
