"""Function inlining.

The SMT pipeline inlines all functions before encoding (paper §5.2); the
simulator benefits too when policy functions are small.  NV has no recursion,
so inlining terminates.  Top-level definitions are substituted into later
declarations; beta-redexes ``(fun x -> e) a`` become let-bindings, which the
partial evaluator then simplifies.
"""

from __future__ import annotations

from ..lang import ast as A
from ..lang.errors import NvTransformError
from .rename import Renamer


def substitute(e: A.Expr, env: dict[str, A.Expr]) -> A.Expr:
    """Capture-avoiding substitution (assumes alpha-renamed input, so bound
    names never collide with the substitution's domain or free variables)."""
    if not env:
        return e
    if isinstance(e, A.EVar):
        replacement = env.get(e.name)
        return replacement if replacement is not None else e
    if isinstance(e, A.ELet):
        new_env = {k: v for k, v in env.items() if k != e.name}
        return A.ELet(e.name, substitute(e.bound, env), substitute(e.body, new_env),
                      annot=e.annot, ty=e.ty, span=e.span)
    if isinstance(e, A.ELetPat):
        bound_names = set(e.pat.bound_vars())
        new_env = {k: v for k, v in env.items() if k not in bound_names}
        return A.ELetPat(e.pat, substitute(e.bound, env), substitute(e.body, new_env),
                         ty=e.ty, span=e.span)
    if isinstance(e, A.EFun):
        new_env = {k: v for k, v in env.items() if k != e.param}
        return A.EFun(e.param, substitute(e.body, new_env),
                      param_ty=e.param_ty, ty=e.ty, span=e.span)
    if isinstance(e, A.EMatch):
        branches = []
        for pat, body in e.branches:
            bound_names = set(pat.bound_vars())
            new_env = {k: v for k, v in env.items() if k not in bound_names}
            branches.append((pat, substitute(body, new_env)))
        return A.EMatch(substitute(e.scrutinee, env), tuple(branches),
                        ty=e.ty, span=e.span)
    return A.map_children(e, lambda x: substitute(x, env))


def beta_reduce(e: A.Expr) -> A.Expr:
    """Turn ``(fun x -> body) arg`` into ``let x = arg in body``, bottom-up."""
    e = A.map_children(e, beta_reduce)
    if isinstance(e, A.EApp) and isinstance(e.fn, A.EFun):
        fn = e.fn
        return beta_reduce(A.ELet(fn.param, e.arg, fn.body,
                                  annot=fn.param_ty, ty=e.ty, span=e.span))
    if isinstance(e, A.EApp) and isinstance(e.fn, A.ELet):
        # Push applications through lets: ((let x = a in f) b) -> let x = a in (f b).
        inner = e.fn
        return beta_reduce(A.ELet(inner.name, inner.bound,
                                  A.EApp(inner.body, e.arg, ty=e.ty),
                                  annot=inner.annot, ty=e.ty, span=e.span))
    return e


def inline_program(program: A.Program,
                   keep: set[str] | None = None) -> A.Program:
    """Substitute every top-level ``let`` into subsequent declarations and
    beta-reduce.  ``keep`` names survive as declarations (by default the
    network entry points, fig 8)."""
    if keep is None:
        keep = {"init", "trans", "merge", "assert", "nodes", "edges"}
    renamer = Renamer()
    env: dict[str, A.Expr] = {}
    decls: list[A.Decl] = []
    for d in program.decls:
        if isinstance(d, A.DLet):
            # Rename before substitution (so local binders cannot capture free
            # names in replacements) and after (so a definition substituted at
            # several use sites never shares binder names across sites).
            body = substitute(renamer.rename_expr(d.expr), env)
            body = beta_reduce(renamer.rename_expr(body))
            if d.name in keep:
                decls.append(A.DLet(d.name, body, annot=d.annot))
            else:
                env[d.name] = body
        elif isinstance(d, A.DRequire):
            decls.append(A.DRequire(beta_reduce(substitute(
                renamer.rename_expr(d.expr), env))))
        else:
            decls.append(d)
    return A.Program(decls)


def apply_function(fn_expr: A.Expr, args: list[A.Expr]) -> A.Expr:
    """Build the inlined application of ``fn_expr`` to ``args``."""
    e: A.Expr = fn_expr
    for arg in args:
        e = A.EApp(e, arg)
    return beta_reduce(e)
