"""Alpha-renaming: make every bound variable unique.

The SMT pipeline inlines functions and renames variables so bindings are
unique (paper §5.2 "From Expressions to Constraints"); other passes rely on
uniqueness to substitute without capture.
"""

from __future__ import annotations

import itertools

from ..lang import ast as A


class Renamer:
    def __init__(self, prefix: str = "v") -> None:
        self._counter = itertools.count()
        self.prefix = prefix

    def fresh(self, base: str) -> str:
        return f"{base}~{next(self._counter)}"

    def rename_expr(self, e: A.Expr, env: dict[str, str] | None = None) -> A.Expr:
        return self._rename(e, env or {})

    def _rename(self, e: A.Expr, env: dict[str, str]) -> A.Expr:
        if isinstance(e, A.EVar):
            return A.EVar(env.get(e.name, e.name), ty=e.ty, span=e.span)
        if isinstance(e, A.ELet):
            bound = self._rename(e.bound, env)
            new_name = self.fresh(e.name)
            new_env = dict(env)
            new_env[e.name] = new_name
            return A.ELet(new_name, bound, self._rename(e.body, new_env),
                          annot=e.annot, ty=e.ty, span=e.span)
        if isinstance(e, A.ELetPat):
            bound = self._rename(e.bound, env)
            new_env = dict(env)
            pat = self._rename_pattern(e.pat, new_env)
            return A.ELetPat(pat, bound, self._rename(e.body, new_env),
                             ty=e.ty, span=e.span)
        if isinstance(e, A.EFun):
            new_name = self.fresh(e.param)
            new_env = dict(env)
            new_env[e.param] = new_name
            return A.EFun(new_name, self._rename(e.body, new_env),
                          param_ty=e.param_ty, ty=e.ty, span=e.span)
        if isinstance(e, A.EMatch):
            scrutinee = self._rename(e.scrutinee, env)
            branches = []
            for pat, body in e.branches:
                new_env = dict(env)
                new_pat = self._rename_pattern(pat, new_env)
                branches.append((new_pat, self._rename(body, new_env)))
            return A.EMatch(scrutinee, tuple(branches), ty=e.ty, span=e.span)
        return A.map_children(e, lambda x: self._rename(x, env))

    def _rename_pattern(self, pat: A.Pattern, env: dict[str, str]) -> A.Pattern:
        if isinstance(pat, A.PVar):
            new_name = self.fresh(pat.name)
            env[pat.name] = new_name
            return A.PVar(new_name)
        if isinstance(pat, A.PSome):
            return A.PSome(self._rename_pattern(pat.sub, env))
        if isinstance(pat, A.PTuple):
            return A.PTuple(tuple(self._rename_pattern(p, env) for p in pat.elts))
        if isinstance(pat, A.PEdge):
            return A.PEdge(self._rename_pattern(pat.src, env),
                           self._rename_pattern(pat.dst, env))
        if isinstance(pat, A.PRecord):
            return A.PRecord(tuple((n, self._rename_pattern(p, env))
                                   for n, p in pat.fields))
        return pat


def rename_program(program: A.Program) -> A.Program:
    """Alpha-rename every declaration body (top-level names are kept)."""
    renamer = Renamer()
    decls: list[A.Decl] = []
    for d in program.decls:
        if isinstance(d, A.DLet):
            decls.append(A.DLet(d.name, renamer.rename_expr(d.expr), annot=d.annot))
        elif isinstance(d, A.DRequire):
            decls.append(A.DRequire(renamer.rename_expr(d.expr)))
        else:
            decls.append(d)
    return A.Program(decls)
