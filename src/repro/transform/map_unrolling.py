"""Map unrolling (paper §5.2): total maps become tuples.

A ``dict[k, v]`` whose program accesses it at the constant keys
``c_0 .. c_{n-1}`` unrolls to an (n+1)-tuple of ``v`` — one slot per tracked
key plus a final *default* slot standing for every other key.  Accesses
lower as:

* ``m[c_i]``              → positional projection of slot i;
* ``m[e]`` (computed key) → an if-chain comparing ``e`` against each tracked
  key, falling through to the default slot — the paper's encoding for
  symbolic keys;
* ``m[c_i := v]``         → tuple rebuild with slot i replaced;
* ``createDict d``        → a tuple of n+1 copies of ``d``;
* ``map`` / ``combine``   → slot-wise application;
* ``mapIte p f g m``      → per-slot ``if p c_i then f s_i else g s_i``; the
  default slot evaluates ``p`` on a *sentinel* key distinct from every
  tracked one, which is exact precisely when the predicate is constant off
  the tracked keys (§3.1's key discipline; the SMT encoder enforces the same
  condition).

Assignments through *computed* keys are rejected: a write to an untracked
key cannot be represented in the unrolled form (the paper's restriction that
get/set keys be constants or symbolic values with reserved slots).

The pass requires a typed, inlined, monomorphic program and keys collected
per key *type*; re-run type inference afterwards.
"""

from __future__ import annotations

from typing import Any

from ..lang import ast as A
from ..lang import types as T
from ..lang.errors import NvTransformError

# ---------------------------------------------------------------------------
# Key collection
# ---------------------------------------------------------------------------


def literal_key(e: A.Expr) -> Any | None:
    """The concrete key value of a literal key expression, or None."""
    if isinstance(e, A.EInt):
        return e.value
    if isinstance(e, A.ENode):
        return e.value
    if isinstance(e, A.EBool):
        return e.value
    if isinstance(e, A.EEdge):
        return (e.src, e.dst)
    if isinstance(e, A.ETuple):
        parts = [literal_key(x) for x in e.elts]
        if all(p is not None for p in parts):
            return tuple(parts)
        return None
    return None


def key_literal_expr(value: Any, ty: T.Type) -> A.Expr:
    """Rebuild a literal expression for a collected key value."""
    if isinstance(ty, T.TInt):
        return A.EInt(value, ty.width, ty=ty)
    if isinstance(ty, T.TNode):
        return A.ENode(value, ty=ty)
    if isinstance(ty, T.TBool):
        return A.EBool(value, ty=ty)
    if isinstance(ty, T.TEdge):
        return A.EEdge(value[0], value[1], ty=ty)
    if isinstance(ty, T.TTuple):
        return A.ETuple(tuple(key_literal_expr(v, t)
                              for v, t in zip(value, ty.elts)), ty=ty)
    raise NvTransformError(f"cannot rebuild key literal at type {ty}")


def collect_keys(program: A.Program) -> dict[T.Type, list[Any]]:
    """Constant keys used in get/set, grouped by key type."""
    keys: dict[T.Type, list[Any]] = {}

    def note(key_ty: T.Type, value: Any) -> None:
        bucket = keys.setdefault(key_ty, [])
        if value not in bucket:
            bucket.append(value)

    def walk(e: A.Expr) -> None:
        if isinstance(e, A.EOp) and e.op in ("mget", "mset"):
            map_ty = e.args[0].ty
            if isinstance(map_ty, T.TDict):
                value = literal_key(e.args[1])
                if value is not None:
                    note(map_ty.key, value)
        for c in e.children():
            walk(c)

    for d in program.decls:
        if isinstance(d, A.DLet):
            walk(d.expr)
        elif isinstance(d, A.DRequire):
            walk(d.expr)
    return keys


# ---------------------------------------------------------------------------
# The unrolling pass
# ---------------------------------------------------------------------------


class MapUnroller:
    def __init__(self, keys: dict[T.Type, list[Any]]) -> None:
        self.keys = keys
        self._tmp = 0

    def fresh(self, base: str) -> str:
        self._tmp += 1
        return f"__mu_{base}{self._tmp}"

    def keys_for(self, key_ty: T.Type) -> list[Any]:
        return self.keys.get(key_ty, [])

    # -- types ----------------------------------------------------------

    def unroll_type(self, ty: T.Type) -> T.Type:
        if isinstance(ty, T.TDict):
            n = len(self.keys_for(ty.key))
            value = self.unroll_type(ty.value)
            return T.TTuple(tuple([value] * (n + 1)))
        if isinstance(ty, T.TOption):
            return T.TOption(self.unroll_type(ty.elt))
        if isinstance(ty, T.TTuple):
            return T.TTuple(tuple(self.unroll_type(t) for t in ty.elts))
        if isinstance(ty, T.TRecord):
            return T.TRecord(tuple((n, self.unroll_type(t)) for n, t in ty.fields))
        if isinstance(ty, T.TArrow):
            return T.TArrow(self.unroll_type(ty.arg), self.unroll_type(ty.result))
        return ty

    # -- expressions ------------------------------------------------------

    def unroll(self, e: A.Expr) -> A.Expr:
        ty = self.unroll_type(e.ty) if e.ty is not None else None
        if isinstance(e, A.EOp) and e.op in (
                "mcreate", "mget", "mset", "mmap", "mcombine", "mmapite"):
            out = self._unroll_map_op(e, ty)
            out.ty = ty
            return out
        out = A.map_children(e, self.unroll)
        out.ty = ty
        if isinstance(out, A.EFun) and out.param_ty is not None:
            out.param_ty = self.unroll_type(out.param_ty)
        if isinstance(out, A.ELet) and out.annot is not None:
            out.annot = self.unroll_type(out.annot)
        return out

    def _map_info(self, map_expr: A.Expr) -> tuple[T.Type, list[Any], int]:
        map_ty = map_expr.ty
        if not isinstance(map_ty, T.TDict):
            raise NvTransformError("map unrolling requires typed map operands")
        tracked = self.keys_for(map_ty.key)
        return map_ty.key, tracked, len(tracked) + 1

    def _slots(self, m: A.Expr, arity: int, value_ty: T.Type | None
               ) -> tuple[list[A.Expr], str | None]:
        """Slot access expressions for an unrolled map; binds non-variable
        subjects to a temporary (returned for the caller's let)."""
        if isinstance(m, A.ETuple):
            return list(m.elts), None
        if isinstance(m, A.EVar):
            base: A.Expr = m
            name = None
        else:
            name = self.fresh("m")
            base = A.EVar(name, ty=m.ty)
        slots = [A.ETupleGet(base, i, arity, ty=value_ty) for i in range(arity)]
        return slots, name

    def _wrap_let(self, name: str | None, bound: A.Expr, body: A.Expr) -> A.Expr:
        if name is None:
            return body
        return A.ELet(name, bound, body, ty=body.ty)

    def _unroll_map_op(self, e: A.EOp, out_ty: T.Type | None) -> A.Expr:
        op = e.op
        if op == "mcreate":
            if not isinstance(e.ty, T.TDict):
                raise NvTransformError("createDict requires a typed AST")
            n = len(self.keys_for(e.ty.key)) + 1
            default = self.unroll(e.args[0])
            name = self.fresh("d")
            var = A.EVar(name, ty=default.ty)
            tup = A.ETuple(tuple([var] * n), ty=out_ty)
            return A.ELet(name, default, tup, ty=out_ty)

        if op == "mget":
            key_ty, tracked, arity = self._map_info(e.args[0])
            m = self.unroll(e.args[0])
            value_ty = out_ty
            key_value = literal_key(e.args[1])
            slots, name = self._slots(m, arity, value_ty)
            if key_value is not None:
                index = tracked.index(key_value)
                return self._wrap_let(name, m, slots[index])
            # Computed key: if-chain over the tracked keys (paper §5.2).
            key = self.unroll(e.args[1])
            kname = self.fresh("k")
            kvar = A.EVar(kname, ty=key.ty)
            chain: A.Expr = slots[-1]  # default
            for i in reversed(range(len(tracked))):
                cond = A.EOp("eq", (kvar, key_literal_expr(tracked[i], key_ty)),
                             ty=T.TBool())
                chain = A.EIf(cond, slots[i], chain, ty=value_ty)
            body = A.ELet(kname, key, chain, ty=value_ty)
            return self._wrap_let(name, m, body)

        if op == "mset":
            key_ty, tracked, arity = self._map_info(e.args[0])
            m = self.unroll(e.args[0])
            value = self.unroll(e.args[2])
            key_value = literal_key(e.args[1])
            if key_value is None:
                raise NvTransformError(
                    "map set through a computed key cannot be unrolled "
                    "(§3.1: set keys must be constants)")
            index = tracked.index(key_value)
            slots, name = self._slots(m, arity, None)
            elts = list(slots)
            elts[index] = value
            return self._wrap_let(name, m, A.ETuple(tuple(elts), ty=out_ty))

        if op == "mmap":
            _, _, arity = self._map_info(e.args[1])
            fn = self.unroll(e.args[0])
            m = self.unroll(e.args[1])
            fname = self.fresh("f")
            fvar = A.EVar(fname, ty=fn.ty)
            slots, name = self._slots(m, arity, None)
            tup = A.ETuple(tuple(A.EApp(fvar, s) for s in slots), ty=out_ty)
            return A.ELet(fname, fn, self._wrap_let(name, m, tup), ty=out_ty)

        if op == "mcombine":
            _, _, arity = self._map_info(e.args[1])
            fn = self.unroll(e.args[0])
            m1 = self.unroll(e.args[1])
            m2 = self.unroll(e.args[2])
            fname = self.fresh("f")
            fvar = A.EVar(fname, ty=fn.ty)
            slots1, n1 = self._slots(m1, arity, None)
            slots2, n2 = self._slots(m2, arity, None)
            tup = A.ETuple(tuple(
                A.EApp(A.EApp(fvar, a), b) for a, b in zip(slots1, slots2)),
                ty=out_ty)
            body = self._wrap_let(n1, m1, self._wrap_let(n2, m2, tup))
            return A.ELet(fname, fn, body, ty=out_ty)

        if op == "mmapite":
            key_ty, tracked, arity = self._map_info(e.args[3])
            pred = self.unroll(e.args[0])
            fn_t = self.unroll(e.args[1])
            fn_f = self.unroll(e.args[2])
            m = self.unroll(e.args[3])
            pname, tname, ename = (self.fresh("p"), self.fresh("t"), self.fresh("e"))
            pvar = A.EVar(pname, ty=pred.ty)
            tvar = A.EVar(tname, ty=fn_t.ty)
            evar = A.EVar(ename, ty=fn_f.ty)
            slots, name = self._slots(m, arity, None)
            elts = []
            for i, slot in enumerate(slots[:-1]):
                cond = A.EApp(pvar, key_literal_expr(tracked[i], key_ty))
                elts.append(A.EIf(cond, A.EApp(tvar, slot), A.EApp(evar, slot)))
            sentinel = key_literal_expr(self._sentinel(key_ty, tracked), key_ty)
            elts.append(A.EIf(A.EApp(pvar, sentinel),
                              A.EApp(tvar, slots[-1]), A.EApp(evar, slots[-1])))
            tup = A.ETuple(tuple(elts), ty=out_ty)
            body = self._wrap_let(name, m, tup)
            body = A.ELet(ename, fn_f, body, ty=out_ty)
            body = A.ELet(tname, fn_t, body, ty=out_ty)
            return A.ELet(pname, pred, body, ty=out_ty)

        raise NvTransformError(f"unexpected map operator {op!r}")

    def _sentinel(self, key_ty: T.Type, tracked: list[Any]) -> Any:
        used = set(tracked)
        if isinstance(key_ty, (T.TInt, T.TNode)):
            candidate = 0
            while candidate in used:
                candidate += 1
            return candidate
        if isinstance(key_ty, T.TBool):
            for candidate in (False, True):
                if candidate not in used:
                    return candidate
        raise NvTransformError(
            f"cannot form a sentinel key of type {key_ty} for the default slot")


def unroll_program(program: A.Program) -> A.Program:
    """Unroll every map in a typed, monomorphic program.

    The result contains no ``dict`` types or map operations; re-run the type
    checker before further passes.
    """
    unroller = MapUnroller(collect_keys(program))
    decls: list[A.Decl] = []
    for d in program.decls:
        if isinstance(d, A.DLet):
            annot = unroller.unroll_type(d.annot) if d.annot is not None else None
            decls.append(A.DLet(d.name, unroller.unroll(d.expr), annot=annot))
        elif isinstance(d, A.DRequire):
            decls.append(A.DRequire(unroller.unroll(d.expr)))
        elif isinstance(d, A.DSymbolic):
            decls.append(A.DSymbolic(d.name, unroller.unroll_type(d.ty)))
        elif isinstance(d, A.DType):
            decls.append(A.DType(d.name, unroller.unroll_type(d.ty)))
        else:
            decls.append(d)
    return A.Program(decls)
