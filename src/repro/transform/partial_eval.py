"""Partial evaluation of NV expressions.

The paper's SMT pipeline partially evaluates programs to "normalise away most
of the clutter introduced by language abstractions and transformations"
(§5.2).  All NV expressions are pure and total modulo match failure, so the
usual simplifications are sound:

* constant folding of arithmetic, comparisons and boolean operators;
* ``if``/``match`` reduction when the scrutinee's constructor is known;
* projection reduction on tuple/record literals and record updates;
* let inlining for cheap or single-use bindings, and dead-let elimination.

The pass assumes alpha-renamed input (unique binders).
"""

from __future__ import annotations

from ..lang import ast as A
from ..lang import types as T
from .inline import substitute

_MAX_PASSES = 10


def partial_eval(e: A.Expr) -> A.Expr:
    """Simplify ``e`` to a fixpoint (bounded number of passes)."""
    for _ in range(_MAX_PASSES):
        simplified = _simplify(e)
        if simplified is e:
            return e
        e = simplified
    return e


def is_value(e: A.Expr) -> bool:
    """Syntactic values: literals and constructors of literals."""
    if isinstance(e, (A.EBool, A.EInt, A.ENode, A.EEdge, A.ENone)):
        return True
    if isinstance(e, A.ESome):
        return is_value(e.sub)
    if isinstance(e, A.ETuple):
        return all(is_value(x) for x in e.elts)
    if isinstance(e, A.ERecord):
        return all(is_value(x) for _, x in e.fields)
    if isinstance(e, A.EFun):
        return True
    return False


def _simplify(e: A.Expr) -> A.Expr:
    new = A.map_children(e, _simplify)
    if all(a is b for a, b in zip(e.children(), new.children())):
        new = e  # nothing below changed: keep the original node identity
    e = new

    if isinstance(e, A.EOp):
        folded = _fold_op(e)
        if folded is not None:
            return folded
        return e

    if isinstance(e, A.EIf):
        if isinstance(e.cond, A.EBool):
            return e.then if e.cond.value else e.els
        if _same_expr(e.then, e.els):
            return e.then
        return e

    if isinstance(e, A.EProj):
        base = e.sub
        if isinstance(base, A.ERecord):
            for name, sub_e in base.fields:
                if name == e.label:
                    return sub_e
        if isinstance(base, A.ERecordWith):
            for name, sub_e in base.updates:
                if name == e.label:
                    return sub_e
            return _simplify(A.EProj(base.base, e.label, ty=e.ty, span=e.span))
        return e

    if isinstance(e, A.ETupleGet):
        if isinstance(e.sub, A.ETuple):
            return e.sub.elts[e.index]
        return e

    if isinstance(e, A.ERecordWith):
        if isinstance(e.base, A.ERecord):
            updates = dict(e.updates)
            return A.ERecord(tuple((n, updates.get(n, v)) for n, v in e.base.fields),
                             ty=e.ty, span=e.span)
        if isinstance(e.base, A.ERecordWith):
            merged = dict(e.base.updates)
            merged.update(dict(e.updates))
            return A.ERecordWith(e.base.base, tuple(merged.items()),
                                 ty=e.ty, span=e.span)
        return e

    if isinstance(e, A.EMatch):
        return _simplify_match(e)

    if isinstance(e, A.ELet):
        return _simplify_let(e)

    if isinstance(e, A.ELetPat):
        reduced = _reduce_let_pat(e)
        return reduced if reduced is not None else e

    return e


# ---------------------------------------------------------------------------
# Operator folding
# ---------------------------------------------------------------------------


def _fold_op(e: A.EOp) -> A.Expr | None:
    op = e.op
    args = e.args
    if op == "and":
        a, b = args
        if isinstance(a, A.EBool):
            return b if a.value else A.EBool(False, ty=e.ty)
        if isinstance(b, A.EBool):
            return a if b.value else _maybe_discard(a, A.EBool(False, ty=e.ty))
        return None
    if op == "or":
        a, b = args
        if isinstance(a, A.EBool):
            return A.EBool(True, ty=e.ty) if a.value else b
        if isinstance(b, A.EBool):
            return _maybe_discard(a, A.EBool(True, ty=e.ty)) if b.value else a
        return None
    if op == "not":
        (a,) = args
        if isinstance(a, A.EBool):
            return A.EBool(not a.value, ty=e.ty)
        if isinstance(a, A.EOp) and a.op == "not":
            return a.args[0]
        return None
    if op in ("add", "sub"):
        a, b = args
        if isinstance(a, A.EInt) and isinstance(b, A.EInt):
            width = e.ty.width if isinstance(e.ty, T.TInt) else a.width
            mask = (1 << width) - 1
            value = (a.value + b.value) & mask if op == "add" else (a.value - b.value) & mask
            return A.EInt(value, width, ty=e.ty)
        if op == "add" and isinstance(b, A.EInt) and b.value == 0:
            return a
        if op == "sub" and isinstance(b, A.EInt) and b.value == 0:
            return a
        return None
    if op == "eq":
        a, b = args
        if is_value(a) and is_value(b) and not isinstance(a, A.EFun):
            result = _value_eq(a, b)
            if result is not None:
                return A.EBool(result, ty=e.ty)
        if _same_expr(a, b):
            return A.EBool(True, ty=e.ty)
        return None
    if op in ("lt", "le"):
        a, b = args
        if isinstance(a, A.EInt) and isinstance(b, A.EInt):
            result = a.value < b.value if op == "lt" else a.value <= b.value
            return A.EBool(result, ty=e.ty)
        if isinstance(a, A.ENode) and isinstance(b, A.ENode):
            result = a.value < b.value if op == "lt" else a.value <= b.value
            return A.EBool(result, ty=e.ty)
        return None
    return None


def _value_eq(a: A.Expr, b: A.Expr) -> bool | None:
    """Structural equality of value expressions, or None if incomparable."""
    if isinstance(a, A.EBool) and isinstance(b, A.EBool):
        return a.value == b.value
    if isinstance(a, A.EInt) and isinstance(b, A.EInt):
        return a.value == b.value
    if isinstance(a, A.ENode) and isinstance(b, A.ENode):
        return a.value == b.value
    if isinstance(a, A.EEdge) and isinstance(b, A.EEdge):
        return (a.src, a.dst) == (b.src, b.dst)
    if isinstance(a, A.ENone) and isinstance(b, A.ENone):
        return True
    if isinstance(a, A.ENone) and isinstance(b, A.ESome):
        return False
    if isinstance(a, A.ESome) and isinstance(b, A.ENone):
        return False
    if isinstance(a, A.ESome) and isinstance(b, A.ESome):
        return _value_eq(a.sub, b.sub)
    if isinstance(a, A.ETuple) and isinstance(b, A.ETuple) and len(a.elts) == len(b.elts):
        parts = [_value_eq(x, y) for x, y in zip(a.elts, b.elts)]
        if any(p is False for p in parts):
            return False
        if all(p is True for p in parts):
            return True
        return None
    if isinstance(a, A.ERecord) and isinstance(b, A.ERecord):
        parts = [_value_eq(x, y) for (_, x), (_, y) in zip(a.fields, b.fields)]
        if any(p is False for p in parts):
            return False
        if all(p is True for p in parts):
            return True
        return None
    return None


def _same_expr(a: A.Expr, b: A.Expr) -> bool:
    """Conservative syntactic equality (variables and literals only)."""
    if isinstance(a, A.EVar) and isinstance(b, A.EVar):
        return a.name == b.name
    if is_value(a) and is_value(b) and not isinstance(a, A.EFun):
        return _value_eq(a, b) is True
    return False


def _maybe_discard(discarded: A.Expr, result: A.Expr) -> A.Expr | None:
    """Discard a subexpression only if it is pure — all NV expressions are."""
    return result


# ---------------------------------------------------------------------------
# Match and let reduction
# ---------------------------------------------------------------------------


def _match_value(pat: A.Pattern, e: A.Expr) -> dict[str, A.Expr] | None | bool:
    """Static pattern match: returns bindings on success, False on definite
    mismatch, None if undecidable."""
    if isinstance(pat, A.PWild):
        return {}
    if isinstance(pat, A.PVar):
        return {pat.name: e}
    if isinstance(pat, A.PBool):
        if isinstance(e, A.EBool):
            return {} if e.value == pat.value else False
        return None
    if isinstance(pat, A.PInt):
        if isinstance(e, A.EInt):
            return {} if e.value == pat.value else False
        return None
    if isinstance(pat, A.PNode):
        if isinstance(e, A.ENode):
            return {} if e.value == pat.value else False
        return None
    if isinstance(pat, A.PNone):
        if isinstance(e, A.ENone):
            return {}
        if isinstance(e, A.ESome):
            return False
        return None
    if isinstance(pat, A.PSome):
        if isinstance(e, A.ESome):
            return _match_value(pat.sub, e.sub)
        if isinstance(e, A.ENone):
            return False
        return None
    if isinstance(pat, A.PTuple):
        if isinstance(e, A.ETuple) and len(e.elts) == len(pat.elts):
            bindings: dict[str, A.Expr] = {}
            for p, sub_e in zip(pat.elts, e.elts):
                result = _match_value(p, sub_e)
                if result is False:
                    return False
                if result is None:
                    return None
                bindings.update(result)
            return bindings
        if isinstance(e, A.EEdge) and len(pat.elts) == 2:
            bindings = {}
            for p, value in zip(pat.elts, (e.src, e.dst)):
                result = _match_value(p, A.ENode(value, ty=T.TNode()))
                if result is False:
                    return False
                if result is None:
                    return None
                bindings.update(result)
            return bindings
        return None
    if isinstance(pat, A.PRecord):
        if isinstance(e, A.ERecord):
            by_name = dict(e.fields)
            bindings = {}
            for name, p in pat.fields:
                result = _match_value(p, by_name[name])
                if result is False:
                    return False
                if result is None:
                    return None
                bindings.update(result)
            return bindings
        return None
    return None


def _simplify_match(e: A.EMatch) -> A.Expr:
    kept: list[tuple[A.Pattern, A.Expr]] = []
    for pat, body in e.branches:
        result = _match_value(pat, e.scrutinee)
        if result is False:
            continue  # branch can never match
        if isinstance(result, dict) and not kept:
            # First branch that definitely matches: reduce to substitution.
            return substitute(body, result)
        kept.append((pat, body))
        if isinstance(result, dict):
            break  # later branches are unreachable
    if len(kept) != len(e.branches):
        return A.EMatch(e.scrutinee, tuple(kept), ty=e.ty, span=e.span)
    return e


def _count_uses(e: A.Expr, name: str) -> int:
    if isinstance(e, A.EVar):
        return 1 if e.name == name else 0
    total = 0
    for c in e.children():
        total += _count_uses(c, name)
        if total > 1:
            return total
    return total


def _simplify_let(e: A.ELet) -> A.Expr:
    uses = _count_uses(e.body, e.name)
    if uses == 0:
        return e.body
    cheap = is_value(e.bound) or isinstance(e.bound, (A.EVar, A.EProj, A.ETupleGet))
    if cheap or uses == 1:
        return substitute(e.body, {e.name: e.bound})
    return e


def _reduce_let_pat(e: A.ELetPat) -> A.Expr | None:
    result = _match_value(e.pat, e.bound)
    if isinstance(result, dict):
        return substitute(e.body, result)
    return None


# ---------------------------------------------------------------------------
# Program-level entry point
# ---------------------------------------------------------------------------


def partial_eval_program(program: A.Program) -> A.Program:
    decls: list[A.Decl] = []
    for d in program.decls:
        if isinstance(d, A.DLet):
            decls.append(A.DLet(d.name, partial_eval(d.expr), annot=d.annot))
        elif isinstance(d, A.DRequire):
            decls.append(A.DRequire(partial_eval(d.expr)))
        else:
            decls.append(d)
    return A.Program(decls)
