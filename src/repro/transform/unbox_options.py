"""Option unboxing (paper §5.2): ``option[A]`` becomes ``(bool, A)``.

The first component is the presence tag; the payload of ``None`` is the
type's canonical zero value, keeping structural equality on unboxed pairs
equivalent to option equality (the paper leaves the second component
"irrelevant", which is only sound if equality never observes it — fixing the
payload to a canonical value makes the transformation unconditionally
correct).

Operates on typed ASTs; re-run the type checker on the result.
"""

from __future__ import annotations

from ..lang import ast as A
from ..lang import types as T
from ..lang.errors import NvTransformError


def unbox_type(ty: T.Type) -> T.Type:
    if isinstance(ty, T.TOption):
        return T.TTuple((T.TBool(), unbox_type(ty.elt)))
    if isinstance(ty, T.TTuple):
        return T.TTuple(tuple(unbox_type(t) for t in ty.elts))
    if isinstance(ty, T.TRecord):
        return T.TRecord(tuple((n, unbox_type(t)) for n, t in ty.fields))
    if isinstance(ty, T.TDict):
        return T.TDict(unbox_type(ty.key), unbox_type(ty.value))
    if isinstance(ty, T.TArrow):
        return T.TArrow(unbox_type(ty.arg), unbox_type(ty.result))
    return ty


def zero_expr(ty: T.Type) -> A.Expr:
    """The canonical inhabitant of an (already unboxed) type."""
    if isinstance(ty, T.TBool):
        return A.EBool(False, ty=ty)
    if isinstance(ty, T.TInt):
        return A.EInt(0, ty.width, ty=ty)
    if isinstance(ty, T.TNode):
        return A.ENode(0, ty=ty)
    if isinstance(ty, T.TEdge):
        return A.EEdge(0, 0, ty=ty)
    if isinstance(ty, T.TTuple):
        return A.ETuple(tuple(zero_expr(t) for t in ty.elts), ty=ty)
    if isinstance(ty, T.TRecord):
        return A.ERecord(tuple((n, zero_expr(t)) for n, t in ty.fields), ty=ty)
    if isinstance(ty, T.TDict):
        return A.EOp("mcreate", (zero_expr(ty.value),), ty=ty)
    raise NvTransformError(f"no zero value for type {ty}")


def unbox_expr(e: A.Expr) -> A.Expr:
    """Rewrite an expression, eliminating every option construct."""
    ty = unbox_type(e.ty) if e.ty is not None else None

    if isinstance(e, A.ENone):
        if not isinstance(ty, T.TTuple):
            raise NvTransformError("None requires a typed AST to unbox")
        return A.ETuple((A.EBool(False, ty=T.TBool()), zero_expr(ty.elts[1])),
                        ty=ty, span=e.span)
    if isinstance(e, A.ESome):
        return A.ETuple((A.EBool(True, ty=T.TBool()), unbox_expr(e.sub)),
                        ty=ty, span=e.span)
    if isinstance(e, A.EMatch):
        return A.EMatch(unbox_expr(e.scrutinee),
                        tuple((unbox_pattern(p), unbox_expr(b))
                              for p, b in e.branches),
                        ty=ty, span=e.span)
    if isinstance(e, A.ELetPat):
        return A.ELetPat(unbox_pattern(e.pat), unbox_expr(e.bound),
                         unbox_expr(e.body), ty=ty, span=e.span)
    out = A.map_children(e, unbox_expr)
    out.ty = ty
    if isinstance(out, A.EFun) and out.param_ty is not None:
        out.param_ty = unbox_type(out.param_ty)
    if isinstance(out, A.ELet) and out.annot is not None:
        out.annot = unbox_type(out.annot)
    return out


def unbox_pattern(p: A.Pattern) -> A.Pattern:
    if isinstance(p, A.PNone):
        # Tag must be false; payload is irrelevant for matching.
        return A.PTuple((A.PBool(False), A.PWild()))
    if isinstance(p, A.PSome):
        return A.PTuple((A.PBool(True), unbox_pattern(p.sub)))
    if isinstance(p, A.PTuple):
        return A.PTuple(tuple(unbox_pattern(s) for s in p.elts))
    if isinstance(p, A.PEdge):
        return A.PEdge(unbox_pattern(p.src), unbox_pattern(p.dst))
    if isinstance(p, A.PRecord):
        return A.PRecord(tuple((n, unbox_pattern(s)) for n, s in p.fields))
    return p


def unbox_program(program: A.Program) -> A.Program:
    """Unbox every declaration.  The result no longer contains options; the
    caller should re-run type inference before further passes.

    Note: a ``None`` produced by unboxing carries a *canonical* payload, so
    option equality is preserved by pair equality.  Constructing Some with a
    non-canonical payload then dropping the tag cannot be observed.
    """
    decls: list[A.Decl] = []
    for d in program.decls:
        if isinstance(d, A.DLet):
            annot = unbox_type(d.annot) if d.annot is not None else None
            decls.append(A.DLet(d.name, unbox_expr(d.expr), annot=annot))
        elif isinstance(d, A.DRequire):
            decls.append(A.DRequire(unbox_expr(d.expr)))
        elif isinstance(d, A.DSymbolic):
            decls.append(A.DSymbolic(d.name, unbox_type(d.ty)))
        elif isinstance(d, A.DType):
            decls.append(A.DType(d.name, unbox_type(d.ty)))
        else:
            decls.append(d)
    return A.Program(decls)
