"""NV-to-NV transformations (paper §5.2 pipeline + the fig 5 meta-protocol)."""

from .fault_tolerance import fault_tolerance_transform, symbolic_failures_program
from .inline import inline_program
from .partial_eval import partial_eval, partial_eval_program
from .pipeline import lower_program
from .rename import rename_program

__all__ = ["inline_program", "partial_eval", "partial_eval_program",
           "rename_program", "lower_program", "fault_tolerance_transform",
           "symbolic_failures_program"]
