"""The §5.2 source-to-source pipeline, as one composable entry point.

``lower_program`` runs the paper's transformation sequence:

1. inline all functions (NV has no recursion, so this terminates);
2. unbox options into (tag, payload) pairs;
3. eliminate records into positional tuples;
4. flatten nested tuples;
5. partially evaluate, clearing the clutter the passes introduce.

Types are re-inferred after each shape-changing pass (the passes rewrite
layouts, so stale annotations would be wrong).  The result computes the same
stable states as the input — the property the transformation test suite
checks by simulating both — while containing only flat tuples of scalars and
maps, the shape the SMT encoder and MTBDD layouts want.

The pipeline requires a monomorphic program, which step 1 guarantees for
network programs: the fig 8 entry points are monomorphic by definition and
inlining specialises every helper at its use sites.
"""

from __future__ import annotations

from typing import Callable

from .. import obs, perf
from ..lang import ast as A
from ..lang.typecheck import check_program
from .flatten import flatten_program, records_to_tuples_program
from .inline import inline_program
from .partial_eval import partial_eval_program
from .unbox_options import unbox_program


def ast_size(program: A.Program) -> int:
    """The number of expression nodes in a program (per-pass span metric)."""
    stack: list[A.Expr] = []
    for d in program.decls:
        if isinstance(d, (A.DLet, A.DRequire)):
            stack.append(d.expr)
    n = 0
    while stack:
        e = stack.pop()
        n += 1
        stack.extend(e.children())
    return n


def _run_pass(name: str, fn: Callable[[A.Program], A.Program],
              program: A.Program, recheck: bool = True) -> A.Program:
    """Run one §5.2 pass under a ``transform.<name>`` span, recording the
    AST node-count delta and flushing it into :mod:`repro.perf`."""
    tracing = obs.is_enabled()
    before = ast_size(program) if (tracing or perf.is_enabled()) else 0
    with obs.span(f"transform.{name}") as sp:
        program = fn(program)
        if recheck:
            # Shape-changing passes invalidate annotations; re-infer types.
            check_program(program)
        if tracing or perf.is_enabled():
            after = ast_size(program)
            perf.merge({f"{name}_nodes_in": before,
                        f"{name}_nodes_out": after}, prefix="transform.")
            if sp is not None:
                sp.attrs.update(ast_nodes_before=before, ast_nodes_after=after,
                                ast_nodes_delta=after - before)
    return program


def lower_program(program: A.Program, unbox: bool = True,
                  flatten: bool = True, partial: bool = True,
                  unroll: bool = False) -> A.Program:
    """Lower a network program to the §5.2 normal form.

    ``unroll=True`` additionally eliminates maps into tuples (sound only for
    programs obeying the §3.1 key discipline; see
    :mod:`repro.transform.map_unrolling`).

    Each pass runs under a ``transform.<pass>`` span (see :mod:`repro.obs`)
    that records the AST node-count delta, so ``--trace`` shows where the
    pipeline grows or shrinks the program."""
    with obs.span("transform.lower"):
        program = _run_pass("inline", inline_program, program)
        if unroll:
            from .map_unrolling import unroll_program
            program = _run_pass("unroll_maps", unroll_program, program)
        if unbox:
            program = _run_pass("unbox_options", unbox_program, program)
        if flatten:
            program = _run_pass("records_to_tuples",
                                records_to_tuples_program, program)
            program = _run_pass("flatten_tuples", flatten_program, program)
        if partial:
            program = _run_pass("partial_eval", partial_eval_program, program)
    return program
