"""The §5.2 source-to-source pipeline, as one composable entry point.

``lower_program`` runs the paper's transformation sequence:

1. inline all functions (NV has no recursion, so this terminates);
2. unbox options into (tag, payload) pairs;
3. eliminate records into positional tuples;
4. flatten nested tuples;
5. partially evaluate, clearing the clutter the passes introduce.

Types are re-inferred after each shape-changing pass (the passes rewrite
layouts, so stale annotations would be wrong).  The result computes the same
stable states as the input — the property the transformation test suite
checks by simulating both — while containing only flat tuples of scalars and
maps, the shape the SMT encoder and MTBDD layouts want.

The pipeline requires a monomorphic program, which step 1 guarantees for
network programs: the fig 8 entry points are monomorphic by definition and
inlining specialises every helper at its use sites.
"""

from __future__ import annotations

from ..lang import ast as A
from ..lang.typecheck import check_program
from .flatten import flatten_program, records_to_tuples_program
from .inline import inline_program
from .partial_eval import partial_eval_program
from .unbox_options import unbox_program


def lower_program(program: A.Program, unbox: bool = True,
                  flatten: bool = True, partial: bool = True,
                  unroll: bool = False) -> A.Program:
    """Lower a network program to the §5.2 normal form.

    ``unroll=True`` additionally eliminates maps into tuples (sound only for
    programs obeying the §3.1 key discipline; see
    :mod:`repro.transform.map_unrolling`)."""
    program = inline_program(program)
    check_program(program)
    if unroll:
        from .map_unrolling import unroll_program
        program = unroll_program(program)
        check_program(program)
    if unbox:
        program = unbox_program(program)
        check_program(program)
    if flatten:
        program = records_to_tuples_program(program)
        check_program(program)
        program = flatten_program(program)
        check_program(program)
    if partial:
        program = partial_eval_program(program)
        check_program(program)
    return program
